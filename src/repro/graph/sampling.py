"""Neighbourhood sampling used to build account-centred subgraphs (Eq. 2)."""

from __future__ import annotations

from typing import Hashable

from repro.graph.txgraph import TxGraph

__all__ = ["top_k_neighbors", "ego_subgraph"]


def top_k_neighbors(graph: TxGraph, node: Hashable, k: int) -> list[Hashable]:
    """Return up to ``k`` neighbours of ``node``, highest-value first.

    Each neighbour is scored by its **best per-direction average transaction
    value**: for the (at most two) merged directed edges connecting it with
    ``node``, the maximum of ``edge.amount / edge.count`` — the per-direction
    mean transfer size of Section III-B1's value ranking.  Ties on that best
    average are broken by the **total** amount transferred across both
    directions (descending), and remaining ties by the string form of the
    node identifier (ascending), so the ranking is fully deterministic.
    Self-loops never rank.
    """
    scores: dict[Hashable, tuple[float, float]] = {}
    for other in graph.neighbors(node):
        if other == node:
            continue
        total, best_avg = 0.0, 0.0
        for edge in graph.edges_between(node, other):
            total += edge.amount
            best_avg = max(best_avg, edge.amount / max(edge.count, 1))
        scores[other] = (total, best_avg)
    ranked = sorted(scores.items(), key=lambda item: (-item[1][1], -item[1][0], str(item[0])))
    return [node_id for node_id, _score in ranked[:k]]


def ego_subgraph(graph: TxGraph, center: Hashable, hops: int = 2, k: int = 2000) -> TxGraph:
    """Extract the ``hops``-hop top-K ego subgraph around ``center``.

    This implements the iterative sampling of Eq. 2: starting from the centre,
    each frontier node contributes its top-K neighbours (by average transaction
    value) to the next frontier, and the union of all sampled nodes induces the
    returned subgraph.
    """
    if center not in graph:
        raise KeyError(f"center node {center!r} is not in the graph")
    selected: set[Hashable] = {center}
    frontier: set[Hashable] = {center}
    for _hop in range(hops):
        next_frontier: set[Hashable] = set()
        for node in frontier:
            # With at most k incident edges every neighbour ranks in the top-k,
            # so the scoring/sorting pass can be skipped outright; the centre
            # itself (a self-loop "neighbour") is already in ``selected``.
            if graph.degree(node) <= k:
                candidates = graph.neighbors(node)
            else:
                candidates = top_k_neighbors(graph, node, k)
            for neighbor in candidates:
                if neighbor not in selected:
                    next_frontier.add(neighbor)
        selected |= next_frontier
        frontier = next_frontier
        if not frontier:
            break
    return graph.subgraph(selected)
