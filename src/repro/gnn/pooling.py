"""Graph pooling: global read-outs and differentiable pooling (DiffPool)."""

from __future__ import annotations

import numpy as np

from repro.graph.sparse import SparseAdjacency
from repro.gnn.layers import GCNLayer
from repro.nn import Module, Tensor
from repro.nn.functional import softmax

__all__ = ["global_mean_pool", "global_max_pool", "global_sum_pool", "DiffPool"]


def global_mean_pool(x: Tensor) -> Tensor:
    """Mean over nodes, returning a ``(1, d)`` graph representation."""
    return x.mean(axis=0, keepdims=True)


def global_max_pool(x: Tensor) -> Tensor:
    """Element-wise max over nodes (Eq. 10's initial subgraph representation)."""
    return x.max(axis=0, keepdims=True)


def global_sum_pool(x: Tensor) -> Tensor:
    """Sum over nodes."""
    return x.sum(axis=0, keepdims=True)


class DiffPool(Module):
    """Differentiable pooling (Ying et al. 2018), used by the LDG branch.

    A GNN produces a soft cluster-assignment matrix ``M = softmax(GNN(A, h))``
    (Eq. 19); node features and adjacency are then coarsened as
    ``h_pool = M^T h`` and ``A_pool = M^T A M`` (Eq. 20-21).

    The pooled adjacency is returned as a plain numpy array: gradients flow
    through the pooled features (the classification path), while the coarsened
    topology is treated as a constant for the next layer's normalisation.
    """

    def __init__(self, in_dim: int, num_clusters: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        self.num_clusters = num_clusters
        self.assign_gnn = GCNLayer(in_dim, num_clusters, activation=None, rng=rng)
        self.embed_gnn = GCNLayer(in_dim, in_dim, rng=rng)

    def forward(self, x: Tensor, adjacency) -> tuple[Tensor, np.ndarray, Tensor]:
        """Return ``(pooled features, pooled adjacency, assignment matrix)``.

        ``adjacency`` may be sparse or dense; the coarsened ``M^T A M`` is
        returned dense — it has at most ``num_clusters`` rows and is already
        effectively full, so nothing is gained by keeping it in CSR form.
        """
        adj = SparseAdjacency.coerce(adjacency)
        assignment = softmax(self.assign_gnn(x, adj), axis=1)          # (n, c)
        embedded = self.embed_gnn(x, adj)                              # (n, d)
        pooled_features = assignment.T @ embedded                      # (c, d)
        assign_np = assignment.data
        pooled_adjacency = adj.rmatmul(assign_np).T @ assign_np        # M^T A M
        return pooled_features, pooled_adjacency, assignment
