"""Graph pooling: global read-outs and differentiable pooling (DiffPool)."""

from __future__ import annotations

import numpy as np

from repro.graph.sparse import BatchedAdjacency, SparseAdjacency
from repro.gnn.layers import GCNLayer
from repro.gnn.sparse_ops import segment_matmul
from repro.nn import Module, Tensor
from repro.nn.functional import softmax

__all__ = ["global_mean_pool", "global_max_pool", "global_sum_pool", "DiffPool"]


def global_mean_pool(x: Tensor) -> Tensor:
    """Mean over nodes, returning a ``(1, d)`` graph representation."""
    return x.mean(axis=0, keepdims=True)


def global_max_pool(x: Tensor) -> Tensor:
    """Element-wise max over nodes (Eq. 10's initial subgraph representation)."""
    return x.max(axis=0, keepdims=True)


def global_sum_pool(x: Tensor) -> Tensor:
    """Sum over nodes."""
    return x.sum(axis=0, keepdims=True)


class DiffPool(Module):
    """Differentiable pooling (Ying et al. 2018), used by the LDG branch.

    A GNN produces a soft cluster-assignment matrix ``M = softmax(GNN(A, h))``
    (Eq. 19); node features and adjacency are then coarsened as
    ``h_pool = M^T h`` and ``A_pool = M^T A M`` (Eq. 20-21).

    The pooled adjacency is returned as a plain numpy array: gradients flow
    through the pooled features (the classification path), while the coarsened
    topology is treated as a constant for the next layer's normalisation.
    """

    def __init__(self, in_dim: int, num_clusters: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        self.num_clusters = num_clusters
        self.assign_gnn = GCNLayer(in_dim, num_clusters, activation=None, rng=rng)
        self.embed_gnn = GCNLayer(in_dim, in_dim, rng=rng)

    def forward(self, x: Tensor, adjacency) -> tuple[Tensor, np.ndarray, Tensor]:
        """Return ``(pooled features, pooled adjacency, assignment matrix)``.

        ``adjacency`` may be sparse or dense; the coarsened ``M^T A M`` is
        returned dense — it has at most ``num_clusters`` rows and is already
        effectively full, so nothing is gained by keeping it in CSR form.
        """
        adj = SparseAdjacency.coerce(adjacency)
        assignment = softmax(self.assign_gnn(x, adj), axis=1)          # (n, c)
        embedded = self.embed_gnn(x, adj)                              # (n, d)
        pooled_features = assignment.T @ embedded                      # (c, d)
        assign_np = assignment.data
        pooled_adjacency = adj.rmatmul(assign_np).T @ assign_np        # M^T A M
        return pooled_features, pooled_adjacency, assignment

    def forward_batched(self, x: Tensor, adjacency: BatchedAdjacency,
                        ) -> tuple[Tensor, BatchedAdjacency, Tensor]:
        """Pool every block of a block-diagonal batch in one pass.

        The assignment/embedding GNNs and the row-wise softmax are block-local,
        so they run unchanged on the stacked input; the two per-block
        contractions (``M^T h`` and ``M^T A M``) use per-segment matmuls over
        exactly the rows the per-sample path would see.  Returns the pooled
        features as a ``(B·c, d)`` stack and the pooled adjacency as a new
        :class:`BatchedAdjacency` with uniform ``c``-node blocks, built from
        the dense ``M^T A M`` stack with the same non-zero scan the per-sample
        path's next layer applies when it coerces its dense block.
        """
        assignment = softmax(self.assign_gnn(x, adjacency), axis=1)    # (N, c)
        embedded = self.embed_gnn(x, adjacency)                        # (N, d)
        offsets = adjacency.node_offsets
        pooled_features = segment_matmul(assignment, embedded, offsets)
        assign_np = assignment.data
        coarse = adjacency.rmatmul(assign_np)                          # A^T M, (N, c)
        num_graphs = adjacency.num_graphs
        clusters = assign_np.shape[1]
        counts = adjacency.node_counts()
        if num_graphs and counts.min() == counts.max():
            # Uniform blocks (every pool layer past the first): one batched
            # dgemm over the reshaped stacks, same per-block operands.
            n = int(counts[0])
            stack = np.matmul(coarse.reshape(num_graphs, n, clusters)
                              .transpose(0, 2, 1),
                              assign_np.reshape(num_graphs, n, clusters))
        else:
            stack = np.empty((num_graphs, clusters, clusters))
            for g in range(num_graphs):
                lo, hi = offsets[g], offsets[g + 1]
                stack[g] = coarse[lo:hi].T @ assign_np[lo:hi]          # M^T A M
        return pooled_features, BatchedAdjacency.from_dense_blocks(stack), assignment
