"""Graph convolution layers on CSR sparse adjacency: GCN, GAT, GIN, GraphSAGE, APPNP.

Every layer aggregates in O(E) over a :class:`~repro.graph.sparse.SparseAdjacency`;
dense ``(n, n)`` matrices are still accepted everywhere and converted on entry,
so the seed's dense API keeps working.  ``tests/test_gnn_sparse_parity.py``
pins each sparse forward against the faithful dense implementations preserved
in :mod:`repro.gnn.dense_reference` to within 1e-9.
"""

from __future__ import annotations

import numpy as np

from repro.graph.sparse import SparseAdjacency
from repro.gnn.sparse_ops import (gather_cols, gather_rows,
                                  segment_softmax, spmm, spmm_edge_weighted)
from repro.nn import Module, Linear, Parameter, Tensor, concat
from repro.nn.functional import elu, leaky_relu, relu

__all__ = [
    "normalize_adjacency",
    "GCNLayer",
    "GATLayer",
    "GINLayer",
    "GraphSAGELayer",
    "APPNPPropagation",
]


def normalize_adjacency(adjacency, add_self_loops: bool = True):
    """Symmetric GCN normalisation ``D^{-1/2} (A + I) D^{-1/2}``.

    Polymorphic: a :class:`SparseAdjacency` input returns the normalised sparse
    form; a dense array keeps the seed's dense-in / dense-out contract.  Both
    paths guard zero-degree rows (isolated nodes with ``add_self_loops=False``)
    by zeroing the inverse square root instead of dividing by zero.
    """
    if isinstance(adjacency, SparseAdjacency):
        return adjacency.gcn_normalized(add_self_loops=add_self_loops)
    adj = np.asarray(adjacency, dtype=np.float64)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise ValueError("adjacency must be a square matrix")
    if add_self_loops:
        adj = adj + np.eye(adj.shape[0])
    degree = adj.sum(axis=1)
    inv_sqrt = np.zeros_like(degree)
    nonzero = degree > 0
    inv_sqrt[nonzero] = degree[nonzero] ** -0.5
    return adj * inv_sqrt[:, None] * inv_sqrt[None, :]


class GCNLayer(Module):
    """Graph convolution (Kipf & Welling 2017): ``act(\\hat{A} X W)``."""

    def __init__(self, in_dim: int, out_dim: int, activation=relu,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng=rng)
        self.activation = activation

    def forward(self, x: Tensor, adjacency) -> Tensor:
        adj = SparseAdjacency.coerce(adjacency)
        out = spmm(adj.gcn_normalized(), self.linear(x))
        return self.activation(out) if self.activation is not None else out


class GATLayer(Module):
    """Graph attention (Velickovic et al. 2018) with ``num_heads`` averaged heads.

    Attention runs entirely on the edge list of ``A > 0`` plus self loops:
    per-edge scores ``LeakyReLU(a_src·h_i + a_dst·h_j)`` are normalised with a
    per-row segment softmax and aggregated with an edge-weighted scatter — the
    sparse equivalent of the seed's ``(n, n)`` mask + ``-1e9`` softmax.
    """

    def __init__(self, in_dim: int, out_dim: int, num_heads: int = 1,
                 negative_slope: float = 0.2, activation=elu,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_heads = num_heads
        self.out_dim = out_dim
        self.negative_slope = negative_slope
        self.activation = activation
        self.projections = [Linear(in_dim, out_dim, bias=False, rng=rng)
                            for _ in range(num_heads)]
        self.attn_src = [Parameter(rng.normal(0.0, 0.1, size=(out_dim, 1)))
                         for _ in range(num_heads)]
        self.attn_dst = [Parameter(rng.normal(0.0, 0.1, size=(out_dim, 1)))
                         for _ in range(num_heads)]

    def forward(self, x: Tensor, adjacency) -> Tensor:
        n = x.shape[0]
        structure = SparseAdjacency.coerce(adjacency).attention_structure()
        rows, cols = structure.rows, structure.indices
        head_outputs = []
        for head in range(self.num_heads):
            h = self.projections[head](x)                   # (n, out_dim)
            score_src = h @ self.attn_src[head]             # (n, 1)
            score_dst = h @ self.attn_dst[head]             # (n, 1)
            scores = leaky_relu(gather_rows(score_src, structure)
                                + gather_cols(score_dst, structure),
                                self.negative_slope)        # (E, 1)
            attn = segment_softmax(scores, structure)
            head_outputs.append(spmm_edge_weighted(structure, attn, h))
        if self.num_heads == 1:
            out = head_outputs[0]
        else:
            stacked = concat([h.reshape(n, 1, self.out_dim) for h in head_outputs], axis=1)
            out = stacked.mean(axis=1)
        return self.activation(out) if self.activation is not None else out


class GINLayer(Module):
    """Graph isomorphism layer (Xu et al. 2019): ``MLP((1 + eps) x + A x)``."""

    def __init__(self, in_dim: int, out_dim: int, hidden_dim: int | None = None,
                 eps: float = 0.0, train_eps: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        hidden_dim = hidden_dim or out_dim
        self.eps = Parameter(np.array([eps])) if train_eps else Tensor(np.array([eps]))
        self.fc1 = Linear(in_dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, out_dim, rng=rng)

    def forward(self, x: Tensor, adjacency) -> Tensor:
        adj = SparseAdjacency.coerce(adjacency)
        aggregated = spmm(adj.binarized(), x)
        combined = x * (self.eps + 1.0) + aggregated
        return self.fc2(relu(self.fc1(combined)))


class GraphSAGELayer(Module):
    """GraphSAGE with mean aggregation: ``act(W_self x + W_nbr mean(A x))``."""

    def __init__(self, in_dim: int, out_dim: int, activation=relu,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.self_linear = Linear(in_dim, out_dim, rng=rng)
        self.neighbor_linear = Linear(in_dim, out_dim, rng=rng)
        self.activation = activation

    def forward(self, x: Tensor, adjacency) -> Tensor:
        adj = SparseAdjacency.coerce(adjacency)
        neighbor_mean = spmm(adj.mean_normalized(), x)
        out = self.self_linear(x) + self.neighbor_linear(neighbor_mean)
        return self.activation(out) if self.activation is not None else out


class APPNPPropagation(Module):
    """APPNP: personalised-PageRank propagation of an MLP's predictions.

    ``h^{(k+1)} = (1 - alpha) \\hat{A} h^{(k)} + alpha h^{(0)}`` for ``k`` steps.
    """

    def __init__(self, k: int = 10, alpha: float = 0.1):
        super().__init__()
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.k = k
        self.alpha = alpha

    def forward(self, h0: Tensor, adjacency) -> Tensor:
        normalized = SparseAdjacency.coerce(adjacency).gcn_normalized()
        h = h0
        for _ in range(self.k):
            h = spmm(normalized, h) * (1.0 - self.alpha) + h0 * self.alpha
        return h
