"""Hierarchical (node-level + graph-level) attention encoder for the GSG branch."""

from __future__ import annotations

import numpy as np

from repro.graph.sparse import BatchedAdjacency, SparseAdjacency, segment_reduce
from repro.gnn.layers import GATLayer
from repro.gnn.pooling import global_max_pool
from repro.gnn.sparse_ops import (_segment_index, segment_expand_batch,
                                  segment_max_batch, segment_sum_batch)
from repro.nn import Linear, Module, Tensor, concat
from repro.nn.functional import elu, leaky_relu, softmax

__all__ = ["GraphAttentionReadout", "HierarchicalAttentionEncoder"]


class GraphAttentionReadout(Module):
    """Graph-level attention read-out (Eq. 10-13).

    The initial subgraph summary ``c`` is the global max-pool of the node
    embeddings; every node (and ``c`` itself) is scored against ``c`` with a
    LeakyReLU-activated linear layer, the scores are softmax-normalised and the
    graph embedding is the ELU of the attention-weighted sum.
    """

    def __init__(self, dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.score_linear = Linear(2 * dim, 1, rng=rng)
        self.out_linear = Linear(dim, dim, rng=rng)

    def forward(self, node_embeddings: Tensor) -> Tensor:
        summary = global_max_pool(node_embeddings)                     # (1, d) — Eq. 10
        candidates = concat([node_embeddings, summary], axis=0)        # nodes ∪ {c}
        n_candidates = candidates.shape[0]
        summary_repeated = Tensor(np.ones((n_candidates, 1))) @ summary
        scores = leaky_relu(self.score_linear(
            concat([summary_repeated, candidates], axis=1)), 0.2)      # Eq. 11
        weights = softmax(scores, axis=0)                              # Eq. 12
        projected = self.out_linear(candidates)
        graph_embedding = (weights * projected).sum(axis=0, keepdims=True)
        return elu(graph_embedding)                                    # Eq. 13

    def forward_batched(self, node_embeddings: Tensor,
                        offsets: np.ndarray) -> Tensor:
        """Batched read-out over a block-diagonal node stack.

        ``node_embeddings`` is the stacked ``(N, d)`` matrix; ``offsets`` the
        ``(B + 1,)`` node-offset vector of the batch.  Runs the same Eq. 10-13
        math per segment — each block's candidate set is its own nodes plus its
        own summary row, softmax-normalised within the block with the same
        constant max-shift as the dense :func:`softmax` — and returns ``(B, d)``
        graph embeddings matching the per-sample loop.
        """
        _, batch = _segment_index(offsets)
        summary = segment_max_batch(node_embeddings, offsets)          # (B, d) — Eq. 10
        node_scores = leaky_relu(self.score_linear(
            concat([segment_expand_batch(summary, offsets),
                    node_embeddings], axis=1)), 0.2)                   # (N, 1) — Eq. 11
        summary_scores = leaky_relu(self.score_linear(
            concat([summary, summary], axis=1)), 0.2)                  # (B, 1)
        shift = np.maximum(
            segment_reduce(node_scores.data, offsets, np.maximum),
            summary_scores.data)                                       # (B, 1) constant
        exp_nodes = (node_scores - Tensor(shift[batch])).exp()
        exp_summary = (summary_scores - Tensor(shift)).exp()
        denom = segment_sum_batch(exp_nodes, offsets) + exp_summary    # (B, 1) — Eq. 12
        projected_nodes = self.out_linear(node_embeddings)
        projected_summary = self.out_linear(summary)
        graph_embedding = (
            segment_sum_batch((exp_nodes / segment_expand_batch(denom, offsets))
                              * projected_nodes, offsets)
            + (exp_summary / denom) * projected_summary)               # (B, d)
        return elu(graph_embedding)                                    # Eq. 13


class HierarchicalAttentionEncoder(Module):
    """Node-level GAT stack followed by a graph-level attention read-out.

    This is the GSG encoder's backbone (Section IV-A2): ``num_layers`` GAT
    layers update node representations from their neighbours (Eq. 7-9), then
    :class:`GraphAttentionReadout` produces the subgraph embedding (Eq. 10-13).
    """

    def __init__(self, in_dim: int, hidden_dim: int, num_layers: int = 2,
                 num_heads: int = 1, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        dims = [in_dim] + [hidden_dim] * num_layers
        self.layers = [GATLayer(dims[i], dims[i + 1], num_heads=num_heads, rng=rng)
                       for i in range(num_layers)]
        self.readout = GraphAttentionReadout(hidden_dim, rng=rng)

    def node_embeddings(self, x: Tensor, adjacency) -> Tensor:
        """Run only the node-level attention stack (Eq. 7-9).

        ``adjacency`` may be a :class:`SparseAdjacency` or a dense matrix; a
        dense input is converted once here so every GAT layer (and each of its
        heads) shares the same CSR structure and its cached derived forms.
        """
        adj = SparseAdjacency.coerce(adjacency)
        h = x
        for layer in self.layers:
            h = layer(h, adj)
        return h

    def forward(self, x: Tensor, adjacency) -> Tensor:
        """Return the ``(1, hidden_dim)`` subgraph embedding."""
        return self.readout(self.node_embeddings(x, adjacency))

    def forward_batched(self, x: Tensor, adjacency: BatchedAdjacency) -> Tensor:
        """Return ``(B, hidden_dim)`` embeddings for a block-diagonal batch.

        The GAT stack runs unchanged on the stacked adjacency — attention
        structures and per-row softmaxes are block-local, so the node
        embeddings equal the per-sample ones — and only the read-out needs the
        segment offsets.
        """
        return self.readout.forward_batched(
            self.node_embeddings(x, adjacency), adjacency.node_offsets)
