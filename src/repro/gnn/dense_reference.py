"""Faithful dense re-implementations of the seed GNN forward passes.

The production layers in :mod:`repro.gnn.layers` aggregate on CSR arrays; this
module preserves the seed's dense ``(n, n)`` math *verbatim*, operating on the
same layer instances (shared weights), so that:

* ``tests/test_gnn_sparse_parity.py`` can pin sparse vs dense agreement to
  1e-9 on randomized adjacencies, and
* ``benchmarks/perf_gnn.py`` can measure the sparse speedup against the exact
  code the seed ran.

All functions take dense ``np.ndarray`` adjacencies and support full autograd,
exactly as the seed layers did.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor, concat
from repro.nn.functional import leaky_relu, relu, softmax

__all__ = [
    "normalize_adjacency_dense",
    "gcn_forward",
    "gat_forward",
    "gin_forward",
    "sage_forward",
    "appnp_forward",
    "diffpool_forward",
    "hierarchical_node_embeddings",
    "hierarchical_encode",
    "gsg_embed",
    "gsg_forward",
    "ldg_slice_representations",
    "ldg_forward",
    "time_slice_adjacency_dense",
]


def normalize_adjacency_dense(adjacency: np.ndarray, add_self_loops: bool = True,
                              ) -> np.ndarray:
    """Seed ``D^{-1/2} (A + I) D^{-1/2}`` on a dense matrix."""
    adj = np.asarray(adjacency, dtype=np.float64)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise ValueError("adjacency must be a square matrix")
    if add_self_loops:
        adj = adj + np.eye(adj.shape[0])
    degree = adj.sum(axis=1)
    inv_sqrt = np.zeros_like(degree)
    nonzero = degree > 0
    inv_sqrt[nonzero] = degree[nonzero] ** -0.5
    return adj * inv_sqrt[:, None] * inv_sqrt[None, :]


def gcn_forward(layer, x: Tensor, adjacency: np.ndarray) -> Tensor:
    """Seed :class:`GCNLayer` forward: ``act(normalize(A) @ X W)``."""
    normalized = Tensor(normalize_adjacency_dense(adjacency))
    out = normalized @ layer.linear(x)
    return layer.activation(out) if layer.activation is not None else out


def gat_forward(layer, x: Tensor, adjacency: np.ndarray) -> Tensor:
    """Seed :class:`GATLayer` forward: masked ``(n, n)`` softmax attention."""
    n = x.shape[0]
    mask = (np.asarray(adjacency) > 0).astype(np.float64) + np.eye(n)
    neg_inf = Tensor((mask <= 0).astype(np.float64) * -1e9)
    head_outputs = []
    for head in range(layer.num_heads):
        h = layer.projections[head](x)
        score_src = h @ layer.attn_src[head]
        score_dst = h @ layer.attn_dst[head]
        scores = leaky_relu(score_src + score_dst.T, layer.negative_slope)
        attn = softmax(scores + neg_inf, axis=1)
        head_outputs.append(attn @ h)
    if layer.num_heads == 1:
        out = head_outputs[0]
    else:
        stacked = concat([h.reshape(n, 1, layer.out_dim) for h in head_outputs], axis=1)
        out = stacked.mean(axis=1)
    return layer.activation(out) if layer.activation is not None else out


def gin_forward(layer, x: Tensor, adjacency: np.ndarray) -> Tensor:
    """Seed :class:`GINLayer` forward: ``MLP((1 + eps) x + (A > 0) x)``."""
    adj = Tensor((np.asarray(adjacency) > 0).astype(np.float64))
    aggregated = adj @ x
    combined = x * (layer.eps + 1.0) + aggregated
    return layer.fc2(relu(layer.fc1(combined)))


def sage_forward(layer, x: Tensor, adjacency: np.ndarray) -> Tensor:
    """Seed :class:`GraphSAGELayer` forward with dense mean aggregation."""
    adj = (np.asarray(adjacency) > 0).astype(np.float64)
    degree = adj.sum(axis=1, keepdims=True)
    degree[degree == 0] = 1.0
    mean_adj = Tensor(adj / degree)
    out = layer.self_linear(x) + layer.neighbor_linear(mean_adj @ x)
    return layer.activation(out) if layer.activation is not None else out


def appnp_forward(module, h0: Tensor, adjacency: np.ndarray) -> Tensor:
    """Seed :class:`APPNPPropagation` forward with a dense normalised matrix."""
    normalized = Tensor(normalize_adjacency_dense(adjacency))
    h = h0
    for _ in range(module.k):
        h = (normalized @ h) * (1.0 - module.alpha) + h0 * module.alpha
    return h


def diffpool_forward(pool, x: Tensor, adjacency: np.ndarray):
    """Seed :class:`DiffPool` forward: dense GCNs + ``M^T A M`` coarsening."""
    assignment = softmax(gcn_forward(pool.assign_gnn, x, adjacency), axis=1)
    embedded = gcn_forward(pool.embed_gnn, x, adjacency)
    pooled_features = assignment.T @ embedded
    assign_np = assignment.data
    pooled_adjacency = assign_np.T @ np.asarray(adjacency) @ assign_np
    return pooled_features, pooled_adjacency, assignment


def hierarchical_node_embeddings(encoder, x: Tensor, adjacency: np.ndarray) -> Tensor:
    """Seed GAT-stack node embeddings of a :class:`HierarchicalAttentionEncoder`."""
    h = x
    for layer in encoder.layers:
        h = gat_forward(layer, h, adjacency)
    return h


def hierarchical_encode(encoder, x: Tensor, adjacency: np.ndarray) -> Tensor:
    """Seed hierarchical encoder forward (the read-out has no adjacency)."""
    return encoder.readout(hierarchical_node_embeddings(encoder, x, adjacency))


def gsg_embed(network, features: np.ndarray, edge_features: np.ndarray,
              adjacency: np.ndarray) -> Tensor:
    """Seed ``_GSGNetwork.embed`` with the dense encoder path."""
    aligned = leaky_relu(network.align(Tensor(np.hstack([features, edge_features]))))
    return hierarchical_encode(network.encoder, aligned, adjacency)


def gsg_forward(network, features: np.ndarray, edge_features: np.ndarray,
                adjacency: np.ndarray) -> Tensor:
    return network.head(gsg_embed(network, features, edge_features, adjacency))


def ldg_slice_representations(network, features: np.ndarray,
                              slices: list[np.ndarray]) -> list[Tensor]:
    """Seed ``_LDGNetwork.slice_representations`` on dense time slices."""
    projected = relu(network.input_proj(Tensor(features)))
    hidden = projected
    pooled_per_slice: list[Tensor] = []
    for adjacency in slices:
        topo = gcn_forward(network.gcn, hidden, adjacency)
        hidden = network.gru(topo, hidden)
        pooled, pooled_adj = hidden, adjacency
        for pool in network.pools:
            pooled, pooled_adj, _assign = diffpool_forward(pool, pooled, pooled_adj)
        pooled_per_slice.append(pooled.mean(axis=0, keepdims=True))
    return pooled_per_slice


def ldg_forward(network, features: np.ndarray, slices: list[np.ndarray]) -> Tensor:
    """Seed ``_LDGNetwork.forward`` on dense time slices."""
    pooled_per_slice = ldg_slice_representations(network, features, slices)
    weights = softmax(network.slice_logits.reshape(1, -1), axis=1)
    representation = None
    for t, pooled in enumerate(pooled_per_slice):
        weighted = pooled * weights[0, t].reshape(1, 1)
        representation = weighted if representation is None else representation + weighted
    return network.head(relu(representation))


def time_slice_adjacency_dense(graph, num_slices: int, weighted: bool = True,
                               cumulative: bool = False) -> list[np.ndarray]:
    """Seed dense time slicer (kept as the parity reference for the CSR slicer)."""
    from repro.data.slicing import time_slice_adjacency

    return time_slice_adjacency(graph, num_slices, weighted=weighted,
                                cumulative=cumulative)
