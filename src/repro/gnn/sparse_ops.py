"""Gradient-aware sparse message-passing operators.

These wrap the numpy CSR kernels of :class:`~repro.graph.sparse.SparseAdjacency`
in :class:`~repro.nn.Tensor` operations so the GNN layers can aggregate in
O(E) while still training with the reverse-mode autograd engine:

* :func:`spmm` — ``A @ X`` with a constant sparse ``A`` (GCN / GIN / SAGE /
  APPNP aggregation; the backward pass is ``A.T @ grad``).
* :func:`spmm_edge_weighted` — ``out[i] = Σ_e w_e · x[col_e]`` where the
  per-edge weights ``w`` are themselves a tensor (GAT attention aggregation;
  gradients flow to both the weights and the node features).
* :func:`segment_softmax` — softmax of per-edge scores within each CSR row,
  the sparse replacement of the dense masked-softmax attention.
"""

from __future__ import annotations

import numpy as np

from repro.graph.sparse import SparseAdjacency, segment_reduce
from repro.nn import Tensor

__all__ = ["spmm", "spmm_edge_weighted", "segment_softmax", "segment_sum"]


def spmm(adjacency: SparseAdjacency, x: Tensor) -> Tensor:
    """Sparse-dense product ``A @ x`` with gradients flowing through ``x``."""
    if not isinstance(x, Tensor):
        x = Tensor(x)
    data = adjacency.matmul(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(adjacency.rmatmul(grad))

    return Tensor._make(data, (x,), backward)


def spmm_edge_weighted(structure: SparseAdjacency, edge_weights: Tensor,
                       x: Tensor) -> Tensor:
    """Aggregate ``x`` rows along edges with learned per-edge weights.

    ``structure`` supplies the CSR pattern; ``edge_weights`` is an ``(E, 1)``
    tensor aligned with its stored entries.  Returns the ``(n, d)`` tensor
    ``out[i] = Σ_{e: row(e)=i} w_e · x[col(e)]`` — the attention-weighted sum
    without ever materialising an ``(n, n)`` attention matrix.
    """
    rows, cols, indptr = structure.rows, structure.indices, structure.indptr
    contrib = edge_weights.data * x.data[cols]
    data = segment_reduce(contrib, indptr)

    def backward(grad: np.ndarray) -> None:
        grad_rows = grad[rows]
        if edge_weights.requires_grad:
            edge_weights._accumulate(
                (grad_rows * x.data[cols]).sum(axis=1, keepdims=True))
        if x.requires_grad:
            perm, t_indptr = structure._transpose_plan()
            scatter = edge_weights.data * grad_rows
            x._accumulate(segment_reduce(scatter[perm], t_indptr))

    return Tensor._make(data, (edge_weights, x), backward)


def segment_sum(values: Tensor, structure: SparseAdjacency) -> Tensor:
    """Sum per-edge values into per-row totals, with gradient support."""
    indptr, rows = structure.indptr, structure.rows
    data = segment_reduce(values.data, indptr)

    def backward(grad: np.ndarray) -> None:
        values._accumulate(grad[rows])

    return Tensor._make(data, (values,), backward)


def segment_softmax(scores: Tensor, structure: SparseAdjacency) -> Tensor:
    """Row-wise softmax of per-edge scores.

    Matches the dense ``softmax(scores + neg_inf_mask, axis=1)`` exactly on the
    stored edges: the per-row maximum shift is treated as a constant (as the
    dense :func:`repro.nn.functional.softmax` does), masked-out slots simply do
    not exist here, and rows are assumed non-empty (attention structures always
    include self loops).
    """
    rows = structure.rows
    shift = segment_reduce(scores.data, structure.indptr, np.maximum)[rows]
    exp = (scores - Tensor(shift)).exp()
    denom = segment_sum(exp, structure)
    return exp / denom[rows]
