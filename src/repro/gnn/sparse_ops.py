"""Gradient-aware sparse message-passing operators.

These wrap the numpy CSR kernels of :class:`~repro.graph.sparse.SparseAdjacency`
in :class:`~repro.nn.Tensor` operations so the GNN layers can aggregate in
O(E) while still training with the reverse-mode autograd engine:

* :func:`spmm` — ``A @ X`` with a constant sparse ``A`` (GCN / GIN / SAGE /
  APPNP aggregation; the backward pass is ``A.T @ grad``).
* :func:`spmm_edge_weighted` — ``out[i] = Σ_e w_e · x[col_e]`` where the
  per-edge weights ``w`` are themselves a tensor (GAT attention aggregation;
  gradients flow to both the weights and the node features).
* :func:`segment_softmax` — softmax of per-edge scores within each CSR row,
  the sparse replacement of the dense masked-softmax attention.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.graph.sparse import SparseAdjacency, segment_reduce
from repro.nn import Tensor

__all__ = ["spmm", "spmm_edge_weighted", "segment_softmax", "segment_sum",
           "segment_sum_batch", "segment_mean_batch", "segment_max_batch",
           "segment_expand_batch", "segment_matmul", "gather_rows", "gather_cols"]


def spmm(adjacency: SparseAdjacency, x: Tensor) -> Tensor:
    """Sparse-dense product ``A @ x`` with gradients flowing through ``x``."""
    if not isinstance(x, Tensor):
        x = Tensor(x)
    data = adjacency.matmul(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(adjacency.rmatmul(grad), owned=True)

    return Tensor._make(data, (x,), backward)


def spmm_edge_weighted(structure: SparseAdjacency, edge_weights: Tensor,
                       x: Tensor) -> Tensor:
    """Aggregate ``x`` rows along edges with learned per-edge weights.

    ``structure`` supplies the CSR pattern; ``edge_weights`` is an ``(E, 1)``
    tensor aligned with its stored entries.  Returns the ``(n, d)`` tensor
    ``out[i] = Σ_{e: row(e)=i} w_e · x[col(e)]`` — the attention-weighted sum
    without ever materialising an ``(n, n)`` attention matrix.
    """
    rows, cols = structure.rows, structure.indices
    x_cols = x.data[cols]
    contrib = edge_weights.data * x_cols
    data = structure.reduce_rows(contrib)

    def backward(grad: np.ndarray) -> None:
        grad_rows = grad[rows]
        if edge_weights.requires_grad:
            edge_weights._accumulate(
                (grad_rows * x_cols).sum(axis=1, keepdims=True), owned=True)
        if x.requires_grad:
            scatter = edge_weights.data * grad_rows
            x._accumulate(structure.reduce_cols(scatter), owned=True)

    return Tensor._make(data, (edge_weights, x), backward)


def gather_rows(t: Tensor, structure: SparseAdjacency) -> Tensor:
    """Per-edge gather ``t[rows]`` whose backward is the per-row ``reduceat``.

    Bit-identical to the generic fancy-index backward (``np.add.at`` visits
    the edges of each row in the same ascending order the reduction sums them).
    """
    def backward(grad: np.ndarray) -> None:
        t._accumulate(structure.reduce_rows(grad), owned=True)

    return Tensor._make(t.data[structure.rows], (t,), backward)


def gather_cols(t: Tensor, structure: SparseAdjacency) -> Tensor:
    """Per-edge gather ``t[cols]`` whose backward reduces through the memoized
    transpose plan (within a column, edges keep ascending row order — the same
    accumulation order as the generic scatter-add)."""
    def backward(grad: np.ndarray) -> None:
        t._accumulate(structure.reduce_cols(grad), owned=True)

    return Tensor._make(t.data[structure.indices], (t,), backward)


def segment_sum(values: Tensor, structure: SparseAdjacency) -> Tensor:
    """Sum per-edge values into per-row totals, with gradient support."""
    rows = structure.rows
    data = structure.reduce_rows(values.data)

    def backward(grad: np.ndarray) -> None:
        values._accumulate(grad[rows], owned=True)

    return Tensor._make(data, (values,), backward)


def segment_softmax(scores: Tensor, structure: SparseAdjacency) -> Tensor:
    """Row-wise softmax of per-edge scores.

    Matches the dense ``softmax(scores + neg_inf_mask, axis=1)`` exactly on the
    stored edges: the per-row maximum shift is treated as a constant (as the
    dense :func:`repro.nn.functional.softmax` does), masked-out slots simply do
    not exist here, and rows are assumed non-empty (attention structures always
    include self loops).
    """
    rows = structure.rows
    shift = structure.reduce_rows(scores.data, np.maximum)[rows]
    exp = (scores - Tensor(shift)).exp()
    denom = segment_sum(exp, structure)

    def expand(t: Tensor) -> Tensor:
        # t[rows] with a reduceat backward: ``rows`` is sorted by CSR row, so
        # the scatter-add of the generic fancy-index backward reduces to the
        # same per-row sum (identical accumulation order, hence bit-identical).
        def backward(grad: np.ndarray) -> None:
            t._accumulate(structure.reduce_rows(grad), owned=True)

        return Tensor._make(t.data[rows], (t,), backward)

    return exp / expand(denom)


# --------------------------------------------------------------------------
# Segmented readouts over a block-diagonal batch.
#
# ``offsets`` is the ``(B + 1,)`` node-offset vector of a
# :class:`~repro.graph.sparse.BatchedAdjacency`: sample ``b`` owns rows
# ``offsets[b]:offsets[b+1]`` of the stacked ``(N, d)`` node matrix.  Each op
# reduces those row segments to a ``(B, d)`` per-graph output, replacing the
# per-sample ``pooled.sum/mean/max(axis=0)`` readouts of the looped path.


@lru_cache(maxsize=256)
def _segment_index_cached(offsets_bytes: bytes) -> tuple[np.ndarray, np.ndarray]:
    offsets = np.frombuffer(offsets_bytes, dtype=np.int64)
    counts = np.diff(offsets)
    return counts, np.repeat(np.arange(len(counts), dtype=np.int64), counts)


def _segment_index(offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(counts, batch)`` of an offsets vector, cached across calls.

    The segment ops run every training step on the handful of offset vectors
    of the fixed minibatch stacks, so the ``diff``/``repeat`` pair is keyed by
    the raw offset bytes and computed once per distinct vector.
    """
    return _segment_index_cached(
        np.ascontiguousarray(offsets, dtype=np.int64).tobytes())


def segment_expand_batch(x: Tensor, offsets: np.ndarray) -> Tensor:
    """Broadcast per-segment rows to nodes: ``out[i] = x[batch(i)]``.

    The gradient of the repeat is the per-segment sum, computed with the same
    ``reduceat`` scan (and the same in-order accumulation, hence bit-identical
    results) as the generic fancy-index scatter-add it replaces.
    """
    _, batch = _segment_index(offsets)
    data = x.data[batch]

    def backward(grad: np.ndarray) -> None:
        x._accumulate(segment_reduce(grad, offsets), owned=True)

    return Tensor._make(data, (x,), backward)


def segment_sum_batch(x: Tensor, offsets: np.ndarray) -> Tensor:
    """Per-segment row sum: ``out[b] = Σ_{i in segment b} x[i]``."""
    _, batch = _segment_index(offsets)
    data = segment_reduce(x.data, offsets)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad[batch], owned=True)

    return Tensor._make(data, (x,), backward)


def segment_mean_batch(x: Tensor, offsets: np.ndarray) -> Tensor:
    """Per-segment row mean — the batched ``pooled.mean(axis=0)``."""
    counts, batch = _segment_index(offsets)
    if np.all(counts == 1):
        # Every segment is a single row (e.g. after a collapse-to-one pool):
        # the mean is the row itself (sum of one row times 1.0), so the op
        # reduces to a bit-identical pass-through.
        def backward(grad: np.ndarray) -> None:
            x._accumulate(grad)

        return Tensor._make(x.data * 1.0, (x,), backward)
    inv = 1.0 / counts.astype(np.float64)
    data = segment_reduce(x.data, offsets) * inv[:, None]

    def backward(grad: np.ndarray) -> None:
        x._accumulate((grad * inv[:, None])[batch], owned=True)

    return Tensor._make(data, (x,), backward)


def segment_max_batch(x: Tensor, offsets: np.ndarray) -> Tensor:
    """Per-segment row max with the same tie-splitting subgradient as
    :meth:`Tensor.max` (gradient shared evenly between tied entries)."""
    _, batch = _segment_index(offsets)
    data = segment_reduce(x.data, offsets, np.maximum)

    def backward(grad: np.ndarray) -> None:
        mask = (x.data == data[batch]).astype(np.float64)
        ties = segment_reduce(mask, offsets)
        x._accumulate(mask * (grad / ties)[batch], owned=True)

    return Tensor._make(data, (x,), backward)


def segment_matmul(a: Tensor, b: Tensor, offsets: np.ndarray) -> Tensor:
    """Per-segment ``a_bᵀ @ b_b``, stacked: the batched DiffPool contraction.

    ``a`` is ``(N, k)`` and ``b`` is ``(N, d)``; the output is ``(B·k, d)``
    with block ``b`` at rows ``b·k:(b+1)·k``.  Each block is computed with its
    own dgemm call over exactly the rows the per-sample path would use, so the
    result is bit-identical to the looped ``assignment.T @ embedded``.
    """
    k = a.data.shape[1]
    d = b.data.shape[1]
    num_graphs = len(offsets) - 1
    counts, _ = _segment_index(offsets)
    uniform = num_graphs > 0 and counts.min() == counts.max()
    if uniform:
        # Uniform segments (pool layers past the first): batched dgemm over
        # the reshaped stacks — same per-block operands, no Python loop.
        n = int(counts[0])
        data = np.matmul(a.data.reshape(num_graphs, n, k).transpose(0, 2, 1),
                         b.data.reshape(num_graphs, n, d)).reshape(num_graphs * k, d)
    else:
        data = np.empty((num_graphs * k, d), dtype=np.float64)
        for g in range(num_graphs):
            lo, hi = offsets[g], offsets[g + 1]
            data[g * k:(g + 1) * k] = a.data[lo:hi].T @ b.data[lo:hi]

    def backward(grad: np.ndarray) -> None:
        grad3 = grad.reshape(num_graphs, k, d)
        if a.requires_grad:
            if uniform:
                n = int(counts[0])
                grad_a = np.matmul(b.data.reshape(num_graphs, n, d),
                                   grad3.transpose(0, 2, 1)).reshape(-1, k)
            else:
                grad_a = np.empty_like(a.data)
                for g in range(num_graphs):
                    lo, hi = offsets[g], offsets[g + 1]
                    grad_a[lo:hi] = b.data[lo:hi] @ grad3[g].T
            a._accumulate(grad_a, owned=True)
        if b.requires_grad:
            if uniform:
                n = int(counts[0])
                grad_b = np.matmul(a.data.reshape(num_graphs, n, k),
                                   grad3).reshape(-1, d)
            else:
                grad_b = np.empty_like(b.data)
                for g in range(num_graphs):
                    lo, hi = offsets[g], offsets[g + 1]
                    grad_b[lo:hi] = a.data[lo:hi] @ grad3[g]
            b._accumulate(grad_b, owned=True)

    return Tensor._make(data, (a, b), backward)
