"""Gated recurrent unit used to track the LDG's evolutionary features (Eq. 15-18)."""

from __future__ import annotations

import numpy as np

from repro.nn import Module, Parameter, Tensor
from repro.nn.functional import sigmoid, tanh

__all__ = ["GRUCell"]


class GRUCell(Module):
    """A GRU cell operating on per-node feature matrices.

    The LDG encoder feeds the GCN output of each time slice (``U_t``) together
    with the previous evolutionary state (``h_{t-1}``) through update and reset
    gates (Eq. 15-16), computes the candidate state (Eq. 17) and interpolates
    (Eq. 18).  The cell itself is adjacency-free: the per-slice topology (now a
    :class:`~repro.graph.sparse.SparseAdjacency` sequence) is consumed by the
    GCN feeding it, so dense and sparse slice pipelines share this code path.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim

        def init(rows: int, cols: int) -> Parameter:
            limit = np.sqrt(6.0 / (rows + cols))
            return Parameter(rng.uniform(-limit, limit, size=(rows, cols)))

        # Update gate (Eq. 15), reset gate (Eq. 16) and candidate (Eq. 17) weights.
        self.w_update = init(input_dim, hidden_dim)
        self.v_update = init(hidden_dim, hidden_dim)
        self.w_reset = init(input_dim, hidden_dim)
        self.v_reset = init(hidden_dim, hidden_dim)
        self.w_candidate = init(input_dim, hidden_dim)
        self.v_candidate = init(hidden_dim, hidden_dim)
        self.bias_update = Parameter(np.zeros(hidden_dim))
        self.bias_reset = Parameter(np.zeros(hidden_dim))
        self.bias_candidate = Parameter(np.zeros(hidden_dim))

    def forward(self, inputs: Tensor, hidden: Tensor) -> Tensor:
        """One step: combine topological features ``inputs`` with state ``hidden``."""
        update = sigmoid(inputs @ self.w_update + hidden @ self.v_update + self.bias_update)
        reset = sigmoid(inputs @ self.w_reset + hidden @ self.v_reset + self.bias_reset)
        candidate = tanh(inputs @ self.w_candidate
                         + (reset * hidden) @ self.v_candidate
                         + self.bias_candidate)
        return (1.0 - update) * hidden + update * candidate

    def initial_state(self, num_nodes: int) -> Tensor:
        """Zero evolutionary state for ``num_nodes`` nodes."""
        return Tensor(np.zeros((num_nodes, self.hidden_dim)))
