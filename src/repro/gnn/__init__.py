"""Graph neural network layers, pooling operators and recurrent units.

All layers operate on dense adjacency matrices (the paper's subgraphs average
~80-120 nodes, Table II) and :class:`repro.nn.Tensor` feature matrices, so the
whole stack trains with the numpy autograd engine.
"""

from repro.gnn.layers import (
    GCNLayer,
    GATLayer,
    GINLayer,
    GraphSAGELayer,
    APPNPPropagation,
    normalize_adjacency,
)
from repro.gnn.pooling import global_mean_pool, global_max_pool, global_sum_pool, DiffPool
from repro.gnn.recurrent import GRUCell
from repro.gnn.hierarchical import HierarchicalAttentionEncoder, GraphAttentionReadout

__all__ = [
    "GCNLayer",
    "GATLayer",
    "GINLayer",
    "GraphSAGELayer",
    "APPNPPropagation",
    "normalize_adjacency",
    "global_mean_pool",
    "global_max_pool",
    "global_sum_pool",
    "DiffPool",
    "GRUCell",
    "HierarchicalAttentionEncoder",
    "GraphAttentionReadout",
]
