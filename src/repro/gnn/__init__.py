"""Graph neural network layers, pooling operators and recurrent units.

All layers aggregate on CSR sparse adjacency (:class:`SparseAdjacency`) in
O(E) per layer; dense ``(n, n)`` matrices are accepted everywhere and coerced
on entry.  Feature matrices are :class:`repro.nn.Tensor`, so the whole stack
trains with the numpy autograd engine; the seed's dense forward passes are
preserved in :mod:`repro.gnn.dense_reference` as the parity/benchmark baseline.
"""

from repro.graph.sparse import SparseAdjacency
from repro.gnn.sparse_ops import segment_softmax, segment_sum, spmm, spmm_edge_weighted
from repro.gnn.layers import (
    GCNLayer,
    GATLayer,
    GINLayer,
    GraphSAGELayer,
    APPNPPropagation,
    normalize_adjacency,
)
from repro.gnn.pooling import global_mean_pool, global_max_pool, global_sum_pool, DiffPool
from repro.gnn.recurrent import GRUCell
from repro.gnn.hierarchical import HierarchicalAttentionEncoder, GraphAttentionReadout

__all__ = [
    "SparseAdjacency",
    "spmm",
    "spmm_edge_weighted",
    "segment_softmax",
    "segment_sum",
    "GCNLayer",
    "GATLayer",
    "GINLayer",
    "GraphSAGELayer",
    "APPNPPropagation",
    "normalize_adjacency",
    "global_mean_pool",
    "global_max_pool",
    "global_sum_pool",
    "DiffPool",
    "GRUCell",
    "HierarchicalAttentionEncoder",
    "GraphAttentionReadout",
]
