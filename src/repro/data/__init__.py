"""Ethereum data processing: filtering, sampling, features and dataset building.

Implements Section III of the paper: transaction filtering, top-K neighbour
sampling (Eq. 2), the 15-dimensional deep account features of Table I, edge
feature construction, the Global Static Graph / Local Dynamic Graph pair and
the transaction-evolution-time slicing of Eq. 1.
"""

from repro.data.features import (
    DeepFeatureExtractor,
    FEATURE_NAMES,
    FEATURE_GROUPS,
    category_feature_matrix,
)
from repro.data.pipeline import build_transaction_graph, filter_transactions
from repro.data.dataset import (
    AccountSubgraph,
    SubgraphDataset,
    SubgraphDatasetBuilder,
    DatasetConfig,
)
from repro.data.slicing import (
    transaction_evolution_times,
    time_slice_adjacency,
    time_slice_csr,
)
from repro.data.splits import train_test_split, stratified_kfold, one_vs_rest_labels

__all__ = [
    "DeepFeatureExtractor",
    "FEATURE_NAMES",
    "FEATURE_GROUPS",
    "category_feature_matrix",
    "build_transaction_graph",
    "filter_transactions",
    "AccountSubgraph",
    "SubgraphDataset",
    "SubgraphDatasetBuilder",
    "DatasetConfig",
    "transaction_evolution_times",
    "time_slice_adjacency",
    "time_slice_csr",
    "train_test_split",
    "stratified_kfold",
    "one_vs_rest_labels",
]
