"""Transaction-evolution-time slicing for the Local Dynamic Graph (Eq. 1).

Two slicers share the same edge-to-slot assignment: :func:`time_slice_adjacency`
(the seed's dense ``(n, n)`` matrices) and :func:`time_slice_csr`, which builds
:class:`~repro.graph.sparse.SparseAdjacency` slices directly from the edge
arrays without ever allocating a dense matrix — the form the sparse LDG encoder
consumes.
"""

from __future__ import annotations

import numpy as np

from repro.graph.sparse import SparseAdjacency
from repro.graph.txgraph import TxGraph

__all__ = ["transaction_evolution_times", "time_slice_adjacency", "time_slice_csr"]


def transaction_evolution_times(graph: TxGraph) -> dict[tuple, float]:
    """Normalised evolution time in ``[0, 1]`` for every edge (Eq. 1).

    ``T(e_j) = (t_j - t_min) / (t_max - t_min)`` where the min/max are taken over
    the edges of the subgraph.  When all edges share a timestamp the evolution
    time is defined as 0 for every edge.
    """
    edges = graph.edges
    if not edges:
        return {}
    timestamps = np.array([edge.timestamp for edge in edges])
    t_min, t_max = timestamps.min(), timestamps.max()
    span = t_max - t_min
    times = {}
    for edge in edges:
        if span > 0:
            times[(edge.src, edge.dst)] = float((edge.timestamp - t_min) / span)
        else:
            times[(edge.src, edge.dst)] = 0.0
    return times


def time_slice_adjacency(graph: TxGraph, num_slices: int,
                         weighted: bool = True, cumulative: bool = False) -> list[np.ndarray]:
    """Split the subgraph into ``num_slices`` discrete-time adjacency matrices.

    Each edge is assigned to the slice ``floor(T(e) * num_slices)`` (clamped to
    the last slice), producing the discrete-time dynamic graph sequence consumed
    by the LDG encoder.  With ``cumulative=True`` each slice also contains every
    earlier edge, which some baselines (e.g. TEGDetector-style models) prefer.

    Returned matrices use the graph's node-insertion order, the same order as
    :meth:`TxGraph.feature_matrix`, and are symmetrised for message passing.
    """
    if num_slices < 1:
        raise ValueError("num_slices must be >= 1")
    n = graph.num_nodes
    times = transaction_evolution_times(graph)
    slices = [np.zeros((n, n), dtype=np.float64) for _ in range(num_slices)]
    for edge in graph.edges:
        slot = min(int(times[(edge.src, edge.dst)] * num_slices), num_slices - 1)
        i, j = graph.node_index(edge.src), graph.node_index(edge.dst)
        value = edge.amount if weighted else 1.0
        slices[slot][i, j] += value
        slices[slot][j, i] += value
    if cumulative:
        for k in range(1, num_slices):
            slices[k] += slices[k - 1]
    return slices


def _edge_slice_arrays(graph: TxGraph, num_slices: int, weighted: bool,
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised ``(src_idx, dst_idx, value, slot)`` per merged edge."""
    edges = graph.edges
    m = len(edges)
    src = np.empty(m, dtype=np.int64)
    dst = np.empty(m, dtype=np.int64)
    vals = np.empty(m, dtype=np.float64)
    stamps = np.empty(m, dtype=np.float64)
    for i, edge in enumerate(edges):
        src[i] = graph.node_index(edge.src)
        dst[i] = graph.node_index(edge.dst)
        vals[i] = edge.amount if weighted else 1.0
        stamps[i] = edge.timestamp
    t_min = stamps.min()
    span = stamps.max() - t_min
    times = (stamps - t_min) / span if span > 0 else np.zeros(m)
    slots = np.minimum((times * num_slices).astype(np.int64), num_slices - 1)
    return src, dst, vals, slots


def time_slice_csr(graph: TxGraph, num_slices: int, weighted: bool = True,
                   cumulative: bool = False) -> list[SparseAdjacency]:
    """CSR twin of :func:`time_slice_adjacency`: no per-slice dense allocation.

    Returns one :class:`SparseAdjacency` per slice whose dense view equals the
    corresponding seed matrix: the same slot assignment, the same symmetrised
    accumulation (each edge contributes to ``(i, j)`` and ``(j, i)``, so a
    self loop counts twice on the diagonal) and the same cumulative semantics.
    """
    if num_slices < 1:
        raise ValueError("num_slices must be >= 1")
    n = graph.num_nodes
    if graph.num_edges == 0:
        return [SparseAdjacency.empty(n) for _ in range(num_slices)]
    src, dst, vals, slots = _edge_slice_arrays(graph, num_slices, weighted)
    slices = []
    for k in range(num_slices):
        mask = slots <= k if cumulative else slots == k
        i, j, v = src[mask], dst[mask], vals[mask]
        slices.append(SparseAdjacency.from_coo(
            np.concatenate([i, j]), np.concatenate([j, i]),
            np.concatenate([v, v]), n))
    return slices
