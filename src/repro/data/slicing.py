"""Transaction-evolution-time slicing for the Local Dynamic Graph (Eq. 1)."""

from __future__ import annotations

import numpy as np

from repro.graph.txgraph import TxGraph

__all__ = ["transaction_evolution_times", "time_slice_adjacency"]


def transaction_evolution_times(graph: TxGraph) -> dict[tuple, float]:
    """Normalised evolution time in ``[0, 1]`` for every edge (Eq. 1).

    ``T(e_j) = (t_j - t_min) / (t_max - t_min)`` where the min/max are taken over
    the edges of the subgraph.  When all edges share a timestamp the evolution
    time is defined as 0 for every edge.
    """
    edges = graph.edges
    if not edges:
        return {}
    timestamps = np.array([edge.timestamp for edge in edges])
    t_min, t_max = timestamps.min(), timestamps.max()
    span = t_max - t_min
    times = {}
    for edge in edges:
        if span > 0:
            times[(edge.src, edge.dst)] = float((edge.timestamp - t_min) / span)
        else:
            times[(edge.src, edge.dst)] = 0.0
    return times


def time_slice_adjacency(graph: TxGraph, num_slices: int,
                         weighted: bool = True, cumulative: bool = False) -> list[np.ndarray]:
    """Split the subgraph into ``num_slices`` discrete-time adjacency matrices.

    Each edge is assigned to the slice ``floor(T(e) * num_slices)`` (clamped to
    the last slice), producing the discrete-time dynamic graph sequence consumed
    by the LDG encoder.  With ``cumulative=True`` each slice also contains every
    earlier edge, which some baselines (e.g. TEGDetector-style models) prefer.

    Returned matrices use the graph's node-insertion order, the same order as
    :meth:`TxGraph.feature_matrix`, and are symmetrised for message passing.
    """
    if num_slices < 1:
        raise ValueError("num_slices must be >= 1")
    n = graph.num_nodes
    times = transaction_evolution_times(graph)
    slices = [np.zeros((n, n), dtype=np.float64) for _ in range(num_slices)]
    for edge in graph.edges:
        slot = min(int(times[(edge.src, edge.dst)] * num_slices), num_slices - 1)
        i, j = graph.node_index(edge.src), graph.node_index(edge.dst)
        value = edge.amount if weighted else 1.0
        slices[slot][i, j] += value
        slices[slot][j, i] += value
    if cumulative:
        for k in range(1, num_slices):
            slices[k] += slices[k - 1]
    return slices
