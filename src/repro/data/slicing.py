"""Transaction-evolution-time slicing for the Local Dynamic Graph (Eq. 1).

Two slicers share the same edge-to-slot assignment: :func:`time_slice_adjacency`
(the seed's dense ``(n, n)`` matrices) and :func:`time_slice_csr`, which builds
:class:`~repro.graph.sparse.SparseAdjacency` slices directly from the edge
arrays without ever allocating a dense matrix — the form the sparse LDG encoder
consumes.  Both read :meth:`TxGraph.edge_arrays` — the graph's columnar edge
store — so no :class:`~repro.graph.txgraph.Edge` object is materialised on
either path.
"""

from __future__ import annotations

import numpy as np

from repro.graph.sparse import SparseAdjacency
from repro.graph.txgraph import TxGraph

__all__ = ["transaction_evolution_times", "time_slice_adjacency", "time_slice_csr"]


def _evolution_time_array(timestamps: np.ndarray) -> np.ndarray:
    """Per-edge ``(t - t_min) / (t_max - t_min)``; zeros when the span is flat."""
    t_min = timestamps.min()
    span = timestamps.max() - t_min
    if span > 0:
        return (timestamps - t_min) / span
    return np.zeros(len(timestamps))


def transaction_evolution_times(graph: TxGraph) -> dict[tuple, float]:
    """Normalised evolution time in ``[0, 1]`` for every edge (Eq. 1).

    ``T(e_j) = (t_j - t_min) / (t_max - t_min)`` where the min/max are taken over
    the edges of the subgraph.  When all edges share a timestamp the evolution
    time is defined as 0 for every edge.
    """
    src_idx, dst_idx, _amount, _count, stamps = graph.edge_arrays()
    if not len(stamps):
        return {}
    times = _evolution_time_array(stamps)
    nodes = graph.nodes
    return {(nodes[i], nodes[j]): t
            for i, j, t in zip(src_idx.tolist(), dst_idx.tolist(),
                               times.tolist())}


def _edge_slice_arrays(graph: TxGraph, num_slices: int, weighted: bool,
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(src_idx, dst_idx, value, slot)`` per merged edge, zero-copy endpoints."""
    src, dst, amount, _count, stamps = graph.edge_arrays()
    vals = amount if weighted else np.ones(len(amount))
    times = _evolution_time_array(stamps)
    slots = np.minimum((times * num_slices).astype(np.int64), num_slices - 1)
    return src, dst, vals, slots


def time_slice_adjacency(graph: TxGraph, num_slices: int,
                         weighted: bool = True, cumulative: bool = False) -> list[np.ndarray]:
    """Split the subgraph into ``num_slices`` discrete-time adjacency matrices.

    Each edge is assigned to the slice ``floor(T(e) * num_slices)`` (clamped to
    the last slice), producing the discrete-time dynamic graph sequence consumed
    by the LDG encoder.  With ``cumulative=True`` each slice also contains every
    earlier edge, which some baselines (e.g. TEGDetector-style models) prefer.

    Returned matrices use the graph's node-insertion order, the same order as
    :meth:`TxGraph.feature_matrix`, and are symmetrised for message passing.
    """
    if num_slices < 1:
        raise ValueError("num_slices must be >= 1")
    n = graph.num_nodes
    slices = [np.zeros((n, n), dtype=np.float64) for _ in range(num_slices)]
    if graph.num_edges:
        src, dst, vals, slots = _edge_slice_arrays(graph, num_slices, weighted)
        # Per-edge accumulation in insertion order — the same left-fold the
        # seed's Edge loop performed (a self loop adds to its diagonal twice).
        for i, j, value, slot in zip(src.tolist(), dst.tolist(),
                                     vals.tolist(), slots.tolist()):
            slices[slot][i, j] += value
            slices[slot][j, i] += value
    if cumulative:
        for k in range(1, num_slices):
            slices[k] += slices[k - 1]
    return slices


def time_slice_csr(graph: TxGraph, num_slices: int, weighted: bool = True,
                   cumulative: bool = False) -> list[SparseAdjacency]:
    """CSR twin of :func:`time_slice_adjacency`: no per-slice dense allocation.

    Returns one :class:`SparseAdjacency` per slice whose dense view equals the
    corresponding seed matrix: the same slot assignment, the same symmetrised
    accumulation (each edge contributes to ``(i, j)`` and ``(j, i)``, so a
    self loop counts twice on the diagonal) and the same cumulative semantics.
    """
    if num_slices < 1:
        raise ValueError("num_slices must be >= 1")
    n = graph.num_nodes
    if graph.num_edges == 0:
        return [SparseAdjacency.empty(n) for _ in range(num_slices)]
    src, dst, vals, slots = _edge_slice_arrays(graph, num_slices, weighted)
    slices = []
    for k in range(num_slices):
        mask = slots <= k if cumulative else slots == k
        i, j, v = src[mask], dst[mask], vals[mask]
        slices.append(SparseAdjacency.from_coo(
            np.concatenate([i, j]), np.concatenate([j, i]),
            np.concatenate([v, v]), n))
    return slices
