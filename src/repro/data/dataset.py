"""Account-centred subgraph dataset construction (Section III-B)."""

from __future__ import annotations

import pickle
import threading

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.chain.labelcloud import AccountCategory
from repro.chain.ledger import Ledger
from repro.data.features import FEATURE_NAMES, DeepFeatureExtractor
from repro.data.pipeline import build_transaction_graph
from repro.data.slicing import time_slice_adjacency, time_slice_csr
from repro.graph.sampling import ego_subgraph
from repro.graph.sparse import SparseAdjacency
from repro.graph.txgraph import TxGraph

__all__ = ["AccountSubgraph", "SubgraphDataset", "SubgraphDatasetBuilder", "DatasetConfig"]


@dataclass
class AccountSubgraph:
    """One sample of the subgraph-classification dataset.

    Attributes
    ----------
    center:
        Address of the target (labelled or negative) account.
    category:
        The account category string, or ``None`` for negative samples drawn from
        the unlabeled population.
    graph:
        The sampled ego subgraph.
    node_features:
        ``(n, 15)`` deep feature matrix, row order matching ``graph.nodes``.
    center_index:
        Row index of the centre node in ``node_features`` / adjacency matrices.
    """

    center: str
    category: str | None
    graph: TxGraph
    node_features: np.ndarray
    center_index: int
    # Lazily built sparse forms: the subgraph topology never changes after
    # sampling, so the CSR adjacency and time-slice sequences (plus their
    # memoized normalisations) are shared across every training epoch.  Builds
    # are double-check-locked so concurrent scoring threads sharing a sample
    # all observe the single instance the winning thread built.
    _sparse_cache: dict = field(default_factory=dict, init=False, repr=False,
                                compare=False)
    _cache_lock: threading.Lock = field(default_factory=threading.Lock, init=False,
                                        repr=False, compare=False)

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_cache_lock"]            # locks are not picklable
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._cache_lock = threading.Lock()

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def adjacency(self, weighted: bool = False) -> np.ndarray:
        """Symmetric adjacency matrix for message passing."""
        return self.graph.adjacency_matrix(weighted=weighted, symmetric=True)

    def adjacency_sparse(self, weighted: bool = False,
                         log_scale: bool = False) -> SparseAdjacency:
        """Cached CSR view of :meth:`adjacency` (same symmetric ``max(A, A.T)``).

        ``log_scale=True`` applies ``log1p`` to the stored values (the
        amount-weighted variant used by TSGN-style baselines); since amounts are
        non-negative the non-zero structure — and therefore the memoized
        normalisations — match the dense ``np.log1p(A)`` exactly.
        """
        key = ("adjacency", weighted, log_scale)
        cached = self._sparse_cache.get(key)
        if cached is None:
            with self._cache_lock:
                cached = self._sparse_cache.get(key)
                if cached is None:
                    cached = SparseAdjacency.from_graph(self.graph, weighted=weighted,
                                                        symmetric=True)
                    if log_scale:
                        cached = SparseAdjacency(cached.indptr, cached.indices,
                                                 np.log1p(cached.data))
                    self._sparse_cache[key] = cached
        return cached

    def edge_features(self) -> np.ndarray:
        """Edge feature matrix ``[total amount, count]`` (Section III-B3)."""
        return self.graph.edge_feature_matrix()

    def node_edge_features(self) -> np.ndarray:
        """Per-node aggregate of incident edge features ``[amount, count]``.

        Used by the GSG feature-alignment step (Eq. 6), which concatenates each
        neighbour's node features with the features of its connecting edge.
        """
        n = self.graph.num_nodes
        src_idx, dst_idx, amount, count, _ts = self.graph.edge_arrays()
        m = len(src_idx)
        if m == 0:
            return np.zeros((n, 2))
        # Interleave (src_0, dst_0, src_1, ...) so each bincount bin folds its
        # contributions in exactly the order the per-edge loop added them.
        endpoints = np.empty(2 * m, dtype=np.int64)
        endpoints[0::2] = src_idx
        endpoints[1::2] = dst_idx
        payload = np.empty(2 * m, dtype=np.float64)
        agg = np.zeros((n, 2))
        payload[0::2] = amount
        payload[1::2] = amount
        agg[:, 0] = np.bincount(endpoints, weights=payload, minlength=n)
        payload[0::2] = count
        payload[1::2] = count
        agg[:, 1] = np.bincount(endpoints, weights=payload, minlength=n)
        return agg

    def time_slices(self, num_slices: int, weighted: bool = True,
                    sparse: bool = False):
        """The LDG's discrete-time adjacency sequence (Eq. 1).

        With ``sparse=True`` the slices are cached :class:`SparseAdjacency`
        instances built straight from the edge arrays (no dense allocation);
        the default remains the seed's dense matrices.
        """
        if not sparse:
            return time_slice_adjacency(self.graph, num_slices, weighted=weighted)
        key = ("slices", num_slices, weighted)
        cached = self._sparse_cache.get(key)
        if cached is None:
            with self._cache_lock:
                cached = self._sparse_cache.get(key)
                if cached is None:
                    cached = time_slice_csr(self.graph, num_slices, weighted=weighted)
                    self._sparse_cache[key] = cached
        return cached


@dataclass
class DatasetConfig:
    """Sampling parameters (Section V-A4: 2 hops, top-K = 2000 by default)."""

    hops: int = 2
    top_k: int = 2000
    negatives_per_positive: float = 1.0
    max_nodes_per_subgraph: int = 200
    seed: int = 13


class SubgraphDataset:
    """A list of :class:`AccountSubgraph` samples with task helpers."""

    def __init__(self, samples: list[AccountSubgraph]):
        self.samples = list(samples)
        # Per-category sample-index arrays, built on first task access: the
        # task helpers are called once per head (9 categories x repeated
        # experiment sweeps), so the O(n) category scans are paid once instead
        # of on every call.
        self._category_indices: dict[str | None, np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index: int) -> AccountSubgraph:
        return self.samples[index]

    def __iter__(self):
        return iter(self.samples)

    def _category_index(self) -> dict[str | None, np.ndarray]:
        """Map category (or ``None``) -> ascending sample-index array."""
        if self._category_indices is None:
            by_category: dict[str | None, list[int]] = {}
            for i, sample in enumerate(self.samples):
                by_category.setdefault(sample.category, []).append(i)
            self._category_indices = {
                category: np.array(idx, dtype=np.intp)
                for category, idx in by_category.items()}
        return self._category_indices

    def categories(self) -> list[str]:
        """Distinct non-null categories present in the dataset."""
        return sorted(c for c in self._category_index() if c is not None)

    def binary_task(self, category: AccountCategory | str,
                    rng: np.random.Generator | None = None,
                    ) -> tuple[list[AccountSubgraph], np.ndarray]:
        """One-vs-rest task for ``category``.

        Positives are samples of the category; negatives are an equally sized
        mix of other categories and unlabeled accounts (matching the paper's
        roughly 1:1 graph counts in Table II).
        """
        category = AccountCategory(category).value
        rng = rng or np.random.default_rng(0)
        index = self._category_index()
        pos_idx = index.get(category)
        if pos_idx is None or len(pos_idx) == 0:
            raise ValueError(f"no samples with category {category!r}")
        positives = [self.samples[i] for i in pos_idx]
        # Ascending complement == the order the original linear scan produced.
        others_idx = np.setdiff1d(np.arange(len(self.samples), dtype=np.intp),
                                  pos_idx, assume_unique=True)
        others = [self.samples[i] for i in others_idx]
        n_neg = min(len(others), len(positives))
        idx = rng.permutation(len(others))[:n_neg]
        negatives = [others[i] for i in idx]
        samples = positives + negatives
        labels = np.array([1] * len(positives) + [0] * len(negatives))
        order = rng.permutation(len(samples))
        return [samples[i] for i in order], labels[order]

    def multiclass_task(self) -> tuple[list[AccountSubgraph], np.ndarray, list[str]]:
        """All labelled samples with integer class indices."""
        index = self._category_index()
        classes = self.categories()
        labelled_idx = np.sort(np.concatenate(
            [index[c] for c in classes])) if classes else np.array([], dtype=np.intp)
        labelled = [self.samples[i] for i in labelled_idx]
        class_to_idx = {c: i for i, c in enumerate(classes)}
        labels = np.array([class_to_idx[s.category] for s in labelled])
        return labelled, labels, classes

    def statistics(self) -> dict[str, dict[str, float]]:
        """Per-category statistics mirroring Table II."""
        index = self._category_index()
        negatives_count = len(index.get(None, ()))
        stats: dict[str, dict[str, float]] = {}
        for category in self.categories():
            positives = [self.samples[i] for i in index[category]]
            stats[category] = {
                "num_positive": len(positives),
                "num_graphs": len(positives) + min(negatives_count, len(positives)),
                "avg_nodes": float(np.mean([s.num_nodes for s in positives])),
                "avg_edges": float(np.mean([s.num_edges for s in positives])),
            }
        return stats

    def feature_matrix(self) -> np.ndarray:
        """Centre-node features for every sample, ``(num_samples, 15)``."""
        return np.vstack([s.node_features[s.center_index] for s in self.samples])


class SubgraphDatasetBuilder:
    """Build a :class:`SubgraphDataset` from a ledger (Stage 1 of the paper).

    Besides the batch :meth:`build`, the builder supports on-demand sampling of
    a single account through :meth:`build_sample` — the primitive the serving
    facade (:class:`repro.api.DeAnonymizer`) uses to answer "what category is
    address X?" for addresses that were never part of a training dataset.  The
    global transaction graph is built once and cached on the builder.
    """

    def __init__(self, ledger: Ledger, config: DatasetConfig | None = None):
        self.ledger = ledger
        self.config = config or DatasetConfig()
        self._extractor = DeepFeatureExtractor(ledger)
        self._graph: TxGraph | None = None
        self._graph_lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_graph_lock"]            # locks are not picklable
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._graph_lock = threading.Lock()

    @property
    def graph(self) -> TxGraph:
        """The global account-interaction graph (built lazily, cached).

        Concurrent first accesses serialise on a lock; every thread receives
        the single graph the winning thread built.
        """
        graph = self._graph
        if graph is None:
            with self._graph_lock:
                graph = self._graph
                if graph is None:
                    graph = build_transaction_graph(self.ledger)
                    self._graph = graph
        return graph

    def warm(self, freeze: bool = False) -> "SubgraphDatasetBuilder":
        """Eagerly build every shared lazy structure the sampling path reads.

        Builds the global graph, its pair/row indexes and memoized CSR forms
        (:meth:`TxGraph.warm`), and the extractor's single-pass feature table,
        so a pool of sampling threads never contends on a build lock.  With
        ``freeze=True`` the graph is sealed against mutation on top
        (:meth:`TxGraph.freeze`) — the strongest serving guarantee.
        """
        graph = self.graph
        if freeze:
            graph.freeze()
        else:
            graph.warm()
        self._extractor.warm()              # forces the global feature table
        return self

    def graph_if_built(self) -> TxGraph | None:
        """The cached global graph, or ``None`` — never triggers the build.

        Monitoring surfaces (e.g. ``DeAnonymizer.stats``) use this to report
        graph sizes without paying for an O(T) construction.
        """
        return self._graph

    def refresh(self) -> list[str]:
        """Fold ledger rows appended since the graph build into the pipeline.

        Incrementally ingests the new rows into the cached global graph
        (:meth:`TxGraph.ingest` — O(new rows), bit-identical to a cold
        rebuild) and returns the addresses incident to the new edges: the
        invalidation set for per-account caches downstream (the extractor's
        feature table refreshes itself lazily, keyed on ledger growth, so it
        needs no explicit call here).  With no cached graph yet — or no new
        rows — this is a cheap no-op returning ``[]``; later builds see the
        full ledger anyway.

        Follows the graph's write contract: must not run concurrently with
        readers (freeze()d graphs refuse; warm()-only serving deployments
        should call this from a single maintenance thread between batches).
        """
        graph = self._graph
        if graph is None:
            return []
        with self._graph_lock:
            return graph.ingest(self.ledger)

    def build(self, workers: int | None = None,
              mode: str = "thread") -> SubgraphDataset:
        """Build the dataset, optionally fanning out across centre accounts.

        The build has two phases with a strict contract between them: the
        *task list* (which accounts to sample, in which order, with which
        label) consumes all of the build's randomness up front, and
        :meth:`build_sample` is a deterministic pure function of the frozen
        builder state.  Sampling is therefore embarrassingly parallel —
        ``workers > 1`` maps the task list over a thread or process pool
        (``mode``) in task order, and the result is bit-identical to the
        sequential build.

        Thread workers share this builder's graph and feature table (warmed
        first so no worker pays a build); process workers receive a pickled
        warmed copy once per worker via the pool initializer — the scaling
        path on multi-core machines.
        """
        tasks = self._build_tasks()
        if workers is None or workers <= 1:
            samples = [self.build_sample(address, category)
                       for address, category in tasks]
        elif mode == "thread":
            self.warm()
            with ThreadPoolExecutor(max_workers=workers) as pool:
                samples = list(pool.map(
                    lambda task: self.build_sample(*task), tasks))
        elif mode == "process":
            self.warm()
            payload = pickle.dumps(self)
            with ProcessPoolExecutor(
                    max_workers=workers, initializer=_init_worker_builder,
                    initargs=(payload,)) as pool:
                samples = list(pool.map(_worker_build_sample, tasks,
                                        chunksize=max(1, len(tasks) // (4 * workers))))
        else:
            raise ValueError(f"unknown build mode {mode!r} "
                             "(expected 'thread' or 'process')")
        return SubgraphDataset(samples)

    def _build_tasks(self) -> list[tuple[str, str | None]]:
        """The ``(address, category)`` sampling plan, in dataset order.

        All RNG happens here (the negative-candidate shuffle), before any
        sample is built — the ordering/randomness contract parallel builds
        rely on.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        graph = self.graph
        labelled_addresses = [addr for addr, _ in self.ledger.labels.items()
                              if graph.has_node(addr)]
        tasks: list[tuple[str, str | None]] = [
            (address, self.ledger.labels.get(address).value)
            for address in labelled_addresses]
        # Negative samples: unlabeled accounts with enough activity.
        n_negatives = int(round(len(labelled_addresses) * cfg.negatives_per_positive))
        candidates = [node for node in graph.nodes
                      if node not in self.ledger.labels and graph.degree(node) >= 2]
        rng.shuffle(candidates)
        tasks.extend((address, None) for address in candidates[:n_negatives])
        return tasks

    def build_sample(self, address: str, category: str | None = None) -> AccountSubgraph:
        """Sample one account-centred subgraph (2-hop top-K ego + deep features)."""
        cfg = self.config
        graph = self.graph
        if address not in graph:
            raise KeyError(f"address {address!r} is not in the transaction graph")
        sub = ego_subgraph(graph, address, hops=cfg.hops, k=cfg.top_k)
        if sub.num_nodes > cfg.max_nodes_per_subgraph:
            sub = self._truncate(sub, address, cfg.max_nodes_per_subgraph)
        # One batched extraction per subgraph instead of a per-node loop: the
        # extractor serves all rows from its single-pass feature table.
        features = self._extractor.extract_many(sub.nodes)
        return AccountSubgraph(
            center=address,
            category=category,
            graph=sub,
            node_features=features,
            center_index=sub.node_index(address),
        )

    def _truncate(self, sub: TxGraph, center: str, max_nodes: int) -> TxGraph:
        """Keep the centre plus the highest-degree nodes when a subgraph is too large."""
        degrees = sub.degree_vector()
        ranked = sorted((node for node in sub.nodes if node != center),
                        key=lambda n: -degrees[sub.node_index(n)])
        keep = [center] + ranked[:max_nodes - 1]
        return sub.subgraph(keep)


# Process-pool plumbing for :meth:`SubgraphDatasetBuilder.build`: each worker
# unpickles the warmed builder once into a module global, then serves
# ``build_sample`` calls from it (initargs are delivered before any task).
_WORKER_BUILDER: SubgraphDatasetBuilder | None = None


def _init_worker_builder(payload: bytes) -> None:
    global _WORKER_BUILDER
    _WORKER_BUILDER = pickle.loads(payload)


def _worker_build_sample(task: tuple[str, str | None]) -> AccountSubgraph:
    address, category = task
    return _WORKER_BUILDER.build_sample(address, category)
