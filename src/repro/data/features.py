"""The 15-dimensional deep account features of Table I."""

from __future__ import annotations

import numpy as np

from repro.chain.ledger import Ledger
from repro.chain.transactions import Transaction

__all__ = [
    "FEATURE_NAMES",
    "FEATURE_GROUPS",
    "DeepFeatureExtractor",
    "category_feature_matrix",
]

#: Ordered names of the 15 deep features (Table I).
FEATURE_NAMES: tuple[str, ...] = (
    "NTS",        # number of transactions sent
    "STV",        # send total value
    "SAV",        # send average value
    "min_STI",    # minimum send time interval
    "max_STI",    # maximum send time interval
    "NTR",        # number of transactions received
    "RTV",        # receive total value
    "RAV",        # receive average value
    "min_RTI",    # minimum receive time interval
    "max_RTI",    # maximum receive time interval
    "SETF",       # send Ether transaction fee (total)
    "RETF",       # receive Ether transaction fee (total)
    "SAETF",      # send average Ether transaction fee
    "RAETF",      # receive average Ether transaction fee
    "NC",         # number of contract calls
)

#: Feature-group membership used for the Figure 5 category-feature analysis.
FEATURE_GROUPS: dict[str, tuple[str, ...]] = {
    "SAF": ("NTS", "STV", "SAV", "min_STI", "max_STI"),
    "RAF": ("NTR", "RTV", "RAV", "min_RTI", "max_RTI"),
    "TFF": ("SETF", "RETF", "SAETF", "RAETF"),
    "CF": ("NC",),
}


def _interval_stats(timestamps: list[float]) -> tuple[float, float]:
    """(min, max) absolute gap between consecutive timestamps; zeros if < 2 events."""
    if len(timestamps) < 2:
        return (0.0, 0.0)
    ordered = sorted(timestamps)
    gaps = np.abs(np.diff(ordered))
    return (float(gaps.min()), float(gaps.max()))


class DeepFeatureExtractor:
    """Compute the 15-dimensional deep feature vector for an account.

    Features follow the definitions in Section III-B2: sender statistics
    (Eq. 3-4), receiver statistics, Ether transaction fees (Eq. 5) and the
    number of contract calls in transactions involving the account.
    """

    def __init__(self, ledger: Ledger):
        self.ledger = ledger

    def extract(self, address: str, transactions: list[Transaction] | None = None) -> np.ndarray:
        """Return the feature vector (length 15) for ``address``.

        Parameters
        ----------
        address:
            The account address.
        transactions:
            Optional pre-filtered transaction list (e.g. restricted to a
            subgraph); defaults to every submitted ledger transaction touching
            the address.
        """
        if transactions is None:
            transactions = self.ledger.transactions_for(address)
        sent = [tx for tx in transactions if tx.sender == address]
        received = [tx for tx in transactions if tx.receiver == address]

        sent_values = np.array([tx.value for tx in sent]) if sent else np.zeros(0)
        recv_values = np.array([tx.value for tx in received]) if received else np.zeros(0)

        nts = float(len(sent))
        stv = float(sent_values.sum())
        sav = float(sent_values.mean()) if len(sent_values) else 0.0
        min_sti, max_sti = _interval_stats([tx.timestamp for tx in sent])

        ntr = float(len(received))
        rtv = float(recv_values.sum())
        rav = float(recv_values.mean()) if len(recv_values) else 0.0
        min_rti, max_rti = _interval_stats([tx.timestamp for tx in received])

        setf = float(sum(tx.fee_eth for tx in sent))
        retf = float(sum(tx.fee_eth for tx in received))
        saetf = setf / nts if nts else 0.0
        raetf = retf / ntr if ntr else 0.0

        nc = float(sum(1 for tx in transactions if tx.is_contract_call))

        return np.array([
            nts, stv, sav, min_sti, max_sti,
            ntr, rtv, rav, min_rti, max_rti,
            setf, retf, saetf, raetf,
            nc,
        ])

    def extract_many(self, addresses: list[str]) -> np.ndarray:
        """Stack feature vectors for a list of addresses into an ``(n, 15)`` matrix."""
        if not addresses:
            return np.zeros((0, len(FEATURE_NAMES)))
        return np.vstack([self.extract(address) for address in addresses])


def _normalize_columns(matrix: np.ndarray) -> np.ndarray:
    """Min-max normalise each column to ``[0, 1]`` (constant columns become 0)."""
    normalized = np.zeros_like(matrix, dtype=np.float64)
    for j in range(matrix.shape[1]):
        column = matrix[:, j]
        low, high = column.min(), column.max()
        if high > low:
            normalized[:, j] = (column - low) / (high - low)
    return normalized


def category_feature_matrix(features: np.ndarray) -> np.ndarray:
    """Collapse 15-dim features into the four category features of Figure 5.

    Each of the 15 features is min-max normalised, then features within the same
    group (SAF / RAF / TFF / CF) are averaged and the group values are normalised
    again, exactly mirroring the paper's two-stage normalisation.
    """
    if features.ndim != 2 or features.shape[1] != len(FEATURE_NAMES):
        raise ValueError(f"expected (n, {len(FEATURE_NAMES)}) feature matrix")
    normalized = _normalize_columns(features)
    name_to_idx = {name: i for i, name in enumerate(FEATURE_NAMES)}
    groups = []
    for group_names in FEATURE_GROUPS.values():
        idx = [name_to_idx[name] for name in group_names]
        groups.append(normalized[:, idx].mean(axis=1))
    grouped = np.column_stack(groups)
    return _normalize_columns(grouped)
