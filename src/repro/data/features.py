"""The 15-dimensional deep account features of Table I."""

from __future__ import annotations

import threading

import numpy as np

from repro.chain.ledger import Ledger
from repro.chain.transactions import GWEI_PER_ETH, Transaction

__all__ = [
    "FEATURE_NAMES",
    "FEATURE_GROUPS",
    "DeepFeatureExtractor",
    "category_feature_matrix",
]

#: Ordered names of the 15 deep features (Table I).
FEATURE_NAMES: tuple[str, ...] = (
    "NTS",        # number of transactions sent
    "STV",        # send total value
    "SAV",        # send average value
    "min_STI",    # minimum send time interval
    "max_STI",    # maximum send time interval
    "NTR",        # number of transactions received
    "RTV",        # receive total value
    "RAV",        # receive average value
    "min_RTI",    # minimum receive time interval
    "max_RTI",    # maximum receive time interval
    "SETF",       # send Ether transaction fee (total)
    "RETF",       # receive Ether transaction fee (total)
    "SAETF",      # send average Ether transaction fee
    "RAETF",      # receive average Ether transaction fee
    "NC",         # number of contract calls
)

#: Feature-group membership used for the Figure 5 category-feature analysis.
FEATURE_GROUPS: dict[str, tuple[str, ...]] = {
    "SAF": ("NTS", "STV", "SAV", "min_STI", "max_STI"),
    "RAF": ("NTR", "RTV", "RAV", "min_RTI", "max_RTI"),
    "TFF": ("SETF", "RETF", "SAETF", "RAETF"),
    "CF": ("NC",),
}


def _interval_stats(timestamps: list[float]) -> tuple[float, float]:
    """(min, max) absolute gap between consecutive timestamps; zeros if < 2 events."""
    if len(timestamps) < 2:
        return (0.0, 0.0)
    ordered = sorted(timestamps)
    gaps = np.abs(np.diff(ordered))
    return (float(gaps.min()), float(gaps.max()))


def _group_interval_stats(accounts_sorted: np.ndarray, ts_sorted: np.ndarray,
                          num_accounts: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-account (min, max) gap between consecutive sorted timestamps.

    ``accounts_sorted``/``ts_sorted`` are parallel arrays sorted by
    ``(account, timestamp)``.  Accounts with fewer than two events get zeros,
    mirroring :func:`_interval_stats`.
    """
    mins = np.zeros(num_accounts)
    maxs = np.zeros(num_accounts)
    n = len(ts_sorted)
    if n < 2:
        return mins, maxs
    boundaries = np.flatnonzero(np.diff(accounts_sorted))
    group_starts = np.concatenate([[0], boundaries + 1])
    group_accounts = accounts_sorted[group_starts]
    group_sizes = np.diff(np.append(group_starts, n))
    gaps = ts_sorted[1:] - ts_sorted[:-1]
    # Cross-account gaps (and a trailing sentinel, so every group start is a
    # valid reduceat index) are neutralised with +/-inf for the min/max passes.
    gaps_min = np.append(gaps, np.inf)
    gaps_max = np.append(gaps, -np.inf)
    gaps_min[boundaries] = np.inf
    gaps_max[boundaries] = -np.inf
    group_min = np.minimum.reduceat(gaps_min, group_starts)
    group_max = np.maximum.reduceat(gaps_max, group_starts)
    valid = group_sizes >= 2
    mins[group_accounts[valid]] = group_min[valid]
    maxs[group_accounts[valid]] = group_max[valid]
    return mins, maxs


class DeepFeatureExtractor:
    """Compute the 15-dimensional deep feature vector for an account.

    Features follow the definitions in Section III-B2: sender statistics
    (Eq. 3-4), receiver statistics, Ether transaction fees (Eq. 5) and the
    number of contract calls in transactions involving the account.
    """

    def __init__(self, ledger: Ledger):
        self.ledger = ledger
        self._table_key: tuple[int, int] | None = None
        self._table_features: np.ndarray | None = None
        self._table_ids: dict[str, int] = {}
        self._table_lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_table_lock"]            # locks are not picklable
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._table_lock = threading.Lock()

    def extract(self, address: str, transactions: list[Transaction] | None = None) -> np.ndarray:
        """Return the feature vector (length 15) for ``address``.

        Parameters
        ----------
        address:
            The account address.
        transactions:
            Optional pre-filtered transaction list (e.g. restricted to a
            subgraph); defaults to every submitted ledger transaction touching
            the address.
        """
        if transactions is None:
            transactions = self.ledger.transactions_for(address)
        sent = [tx for tx in transactions if tx.sender == address]
        received = [tx for tx in transactions if tx.receiver == address]
        nc = sum(1 for tx in transactions if tx.is_contract_call)
        return _feature_vector(sent, received, nc)

    def warm(self) -> "DeepFeatureExtractor":
        """Eagerly build the global per-account feature table (idempotent)."""
        self._global_features()
        return self

    def extract_many(self, addresses: list[str]) -> np.ndarray:
        """Stack feature vectors for a list of addresses into an ``(n, 15)`` matrix.

        Single vectorized pass over the ledger's column arrays (O(T + n·15)):
        the store's parallel value / timestamp / fee / account-id columns are
        consumed directly — no ``Transaction`` is materialised — and every
        per-account statistic is computed with grouped reductions
        (``bincount`` for the sequential sums, sorted ``reduceat`` for the
        interval stats) instead of filtering per-address transaction lists
        once per account.  The result is bit-identical to stacking
        per-address :meth:`extract` calls; a self-transfer counts exactly once
        per role (once in the sender statistics, once in the receiver
        statistics, once in NC), matching the deduplicated
        :meth:`Ledger.transactions_for`.
        """
        if not addresses:
            return np.zeros((0, len(FEATURE_NAMES)))
        features, account_ids = self._global_features()
        rows = np.zeros((len(addresses), len(FEATURE_NAMES)))
        for i, address in enumerate(addresses):
            idx = account_ids.get(address)
            if idx is not None:
                rows[i] = features[idx]
        return rows

    def _global_features(self) -> tuple[np.ndarray, dict[str, int]]:
        """The full per-account feature table, refreshed when the ledger grows.

        Returns ``(features, account_ids)`` where ``features[account_ids[a]]``
        is the Table I vector of address ``a``.  Row ids are the store's
        interned account ids, so the table is computed straight from the
        ledger's column arrays; addresses that never transacted are absent,
        and addresses with only unsubmitted transactions hold all-zero rows.

        Growth is handled incrementally: because the store is append-only, a
        stale table is refreshed by recomputing only the rows of accounts
        touched by the appended transactions (see
        :meth:`_update_global_features`) — bit-identical to a full rebuild,
        at a fraction of the cost — instead of re-sorting the whole ledger.

        Thread-safe: the build runs under a lock with a double-checked fast
        path (``_table_key`` is assigned last, so a lock-free hit only ever
        observes a fully built table); racing readers on a cold extractor all
        share the single table the winning thread computed.  The published
        table array is never mutated in place — refreshes publish a fresh
        array — so readers holding a stale reference still see a coherent
        snapshot of the version they checked against.
        """
        key = (self.ledger.num_transactions, self.ledger.num_accounts)
        if key == self._table_key and self._table_features is not None:
            return self._table_features, self._table_ids
        with self._table_lock:
            return self._build_global_features(key)

    @staticmethod
    def _compute_feature_rows(sender_ids: np.ndarray, receiver_ids: np.ndarray,
                              values: np.ndarray, timestamps: np.ndarray,
                              fees: np.ndarray, is_call: np.ndarray,
                              n_accounts: int) -> np.ndarray:
        """The Table I matrix over one set of submitted transaction rows.

        Rows must be in ledger (block) order; per-account statistics depend
        only on that account's rows, so computing over any row subset that is
        *complete* for an account yields that account's exact full-table row
        (``bincount`` accumulates in array order — the same left-fold the
        full pass performs — and ``lexsort`` is stable, so interval stats sort
        identically).  Both the full build and the incremental refresh call
        this one helper, which is what makes them bit-identical.
        """
        features = np.zeros((n_accounts, len(FEATURE_NAMES)))
        # NC counts the distinct transactions involving the account: one
        # per tx, so a contract-call self-transfer contributes exactly
        # once (the receiver pass skips self rows).
        recv_call = np.where(sender_ids == receiver_ids, 0.0, is_call)
        features[:, 14] = (np.bincount(sender_ids, weights=is_call, minlength=n_accounts)
                           + np.bincount(receiver_ids, weights=recv_call, minlength=n_accounts))

        for offset, ids in ((0, sender_ids), (5, receiver_ids)):
            counts = np.bincount(ids, minlength=n_accounts).astype(np.float64)
            totals = np.bincount(ids, weights=values, minlength=n_accounts)
            fee_totals = np.bincount(ids, weights=fees, minlength=n_accounts)
            active = counts > 0
            means = np.zeros(n_accounts)
            means[active] = totals[active] / counts[active]
            fee_means = np.zeros(n_accounts)
            fee_means[active] = fee_totals[active] / counts[active]
            order = np.lexsort((timestamps, ids))
            min_gap, max_gap = _group_interval_stats(
                ids[order], timestamps[order], n_accounts)
            features[:, offset + 0] = counts
            features[:, offset + 1] = totals
            features[:, offset + 2] = means
            features[:, offset + 3] = min_gap
            features[:, offset + 4] = max_gap
            features[:, 10 + offset // 5] = fee_totals
            features[:, 12 + offset // 5] = fee_means
        return features

    def _build_global_features(self, key: tuple[int, int],
                               ) -> tuple[np.ndarray, dict[str, int]]:
        if key == self._table_key and self._table_features is not None:
            return self._table_features, self._table_ids
        if (self._table_key is not None and self._table_features is not None
                and self._table_key[0] <= key[0] and self._table_key[1] <= key[1]):
            return self._update_global_features(key)
        cols = self.ledger.tx_columns()
        store = self.ledger.store
        submitted = cols.submitted
        account_ids = dict(store.address_ids)
        n_accounts = store.num_addresses
        if submitted.any():
            features = self._compute_feature_rows(
                cols.sender_id[submitted], cols.receiver_id[submitted],
                cols.value[submitted], cols.timestamp[submitted],
                (cols.gas_price[submitted]
                 * cols.gas_used[submitted].astype(np.float64) / GWEI_PER_ETH),
                cols.is_contract_call[submitted].astype(np.float64), n_accounts)
        else:
            features = np.zeros((n_accounts, len(FEATURE_NAMES)))
        self._table_features = features
        self._table_ids = account_ids
        self._table_key = key               # last: publishes the built table
        return features, account_ids

    def _update_global_features(self, key: tuple[int, int],
                                ) -> tuple[np.ndarray, dict[str, int]]:
        """Refresh a stale table after append-only ledger growth (O(T) scan,
        O(touched) recompute — no global re-sort).

        The accounts whose features can have changed are exactly those
        appearing as sender or receiver of a newly appended *submitted* row.
        Their table rows are recomputed from scratch over all of their rows
        (old and new — a boolean-mask gather over the columns), every other
        row is carried over unchanged, and new accounts get rows computed (or
        zeros if they have not transacted).  Publishing follows the same
        discipline as the full build: fresh array, ``_table_key`` last.
        """
        cols = self.ledger.tx_columns()
        store = self.ledger.store
        old_rows, _old_accounts = self._table_key
        n_accounts = store.num_addresses
        features = np.zeros((n_accounts, len(FEATURE_NAMES)))
        old_table = self._table_features
        features[:old_table.shape[0]] = old_table
        new_submitted = cols.submitted[old_rows:]
        touched = np.unique(np.concatenate([
            cols.sender_id[old_rows:][new_submitted],
            cols.receiver_id[old_rows:][new_submitted]]))
        if touched.size:
            lut = np.zeros(n_accounts, dtype=bool)
            lut[touched] = True
            mask = (cols.submitted
                    & (lut[cols.sender_id] | lut[cols.receiver_id]))
            computed = self._compute_feature_rows(
                cols.sender_id[mask], cols.receiver_id[mask],
                cols.value[mask], cols.timestamp[mask],
                (cols.gas_price[mask]
                 * cols.gas_used[mask].astype(np.float64) / GWEI_PER_ETH),
                cols.is_contract_call[mask].astype(np.float64), n_accounts)
            features[touched] = computed[touched]
        account_ids = dict(store.address_ids)
        self._table_features = features
        self._table_ids = account_ids
        self._table_key = key               # last: publishes the refreshed table
        return features, account_ids


def _feature_vector(sent: list[Transaction], received: list[Transaction],
                    num_contract_calls: int) -> np.ndarray:
    """The Table I vector from pre-split sent/received transaction lists.

    Sums are sequential left-folds (plain :func:`sum`) so the scalar path is
    bit-identical to the grouped ``np.bincount`` accumulation that
    :meth:`DeepFeatureExtractor.extract_many` uses.
    """
    nts = float(len(sent))
    stv = float(sum(tx.value for tx in sent))
    sav = stv / nts if nts else 0.0
    min_sti, max_sti = _interval_stats([tx.timestamp for tx in sent])

    ntr = float(len(received))
    rtv = float(sum(tx.value for tx in received))
    rav = rtv / ntr if ntr else 0.0
    min_rti, max_rti = _interval_stats([tx.timestamp for tx in received])

    setf = float(sum(tx.fee_eth for tx in sent))
    retf = float(sum(tx.fee_eth for tx in received))
    saetf = setf / nts if nts else 0.0
    raetf = retf / ntr if ntr else 0.0

    nc = float(num_contract_calls)

    return np.array([
        nts, stv, sav, min_sti, max_sti,
        ntr, rtv, rav, min_rti, max_rti,
        setf, retf, saetf, raetf,
        nc,
    ])


def _normalize_columns(matrix: np.ndarray) -> np.ndarray:
    """Min-max normalise each column to ``[0, 1]`` (constant columns become 0)."""
    normalized = np.zeros_like(matrix, dtype=np.float64)
    for j in range(matrix.shape[1]):
        column = matrix[:, j]
        low, high = column.min(), column.max()
        if high > low:
            normalized[:, j] = (column - low) / (high - low)
    return normalized


def category_feature_matrix(features: np.ndarray) -> np.ndarray:
    """Collapse 15-dim features into the four category features of Figure 5.

    Each of the 15 features is min-max normalised, then features within the same
    group (SAF / RAF / TFF / CF) are averaged and the group values are normalised
    again, exactly mirroring the paper's two-stage normalisation.
    """
    if features.ndim != 2 or features.shape[1] != len(FEATURE_NAMES):
        raise ValueError(f"expected (n, {len(FEATURE_NAMES)}) feature matrix")
    normalized = _normalize_columns(features)
    name_to_idx = {name: i for i, name in enumerate(FEATURE_NAMES)}
    groups = []
    for group_names in FEATURE_GROUPS.values():
        idx = [name_to_idx[name] for name in group_names]
        groups.append(normalized[:, idx].mean(axis=1))
    grouped = np.column_stack(groups)
    return _normalize_columns(grouped)
