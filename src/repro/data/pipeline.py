"""Transaction filtering and global transaction-graph construction."""

from __future__ import annotations

from typing import Iterable

from repro.chain.ledger import Ledger
from repro.chain.transactions import Transaction
from repro.graph.txgraph import TxGraph

__all__ = ["filter_transactions", "build_transaction_graph"]


def filter_transactions(transactions: Iterable[Transaction],
                        min_value: float = 0.0) -> list[Transaction]:
    """Drop unsubmitted transactions, self-transfers and dust below ``min_value``.

    Mirrors the data-filtering step of Section III-B1 ("delete all unsubmitted
    transactions").
    """
    kept = []
    for tx in transactions:
        if not tx.submitted:
            continue
        if tx.sender == tx.receiver:
            continue
        if tx.value < min_value:
            continue
        kept.append(tx)
    return kept


def build_transaction_graph(ledger: Ledger, min_value: float = 0.0,
                            columnar: bool = True) -> TxGraph:
    """Build the full account-interaction graph with merged edges.

    Every submitted transaction becomes (part of) a directed edge from sender to
    receiver; repeated transfers between the same ordered pair are merged into a
    single edge carrying the total amount and count (Section III-B3).  Node
    attributes record whether the account is a contract so downstream feature
    extraction can distinguish EOAs from contract accounts.

    With ``columnar=True`` (the default) the edge stream is ingested straight
    from the ledger's column arrays via :meth:`TxGraph.add_edges_bulk` — the
    filter mask, the merge and the timestamp means are all vectorised, and no
    ``Transaction`` object is ever materialised.  ``columnar=False`` keeps the
    per-object loop; both paths produce bit-identical graphs (pinned by
    ``tests/test_data_pipeline.py``).

    The built graph remembers how many ledger rows it consumed (and the dust
    filter), so blocks appended to the ledger afterwards can be folded in
    incrementally with :meth:`TxGraph.ingest` instead of a full rebuild.
    """
    graph = TxGraph()
    if columnar:
        cols = ledger.tx_columns()
        keep = (cols.submitted
                & (cols.sender_id != cols.receiver_id)
                & (cols.value >= min_value))
        graph.add_edges_bulk(
            cols.sender_id[keep], cols.receiver_id[keep],
            amounts=cols.value[keep], timestamps=cols.timestamp[keep],
            node_keys=ledger.store.addresses)
    else:
        for tx in filter_transactions(ledger.transactions(), min_value=min_value):
            graph.add_edge(tx.sender, tx.receiver, amount=tx.value, count=1,
                           timestamp=tx.timestamp)
    graph._ingested_rows = ledger.num_transactions
    graph._ingest_min_value = min_value
    contracts = ledger.contract_address_set()
    labels = ledger.labels
    for node in graph.nodes:
        graph.set_node_attr(node, "is_contract", node in contracts)
        label = labels.get(node)
        graph.set_node_attr(node, "label", label.value if label else None)
    return graph
