"""Train/test splitting utilities."""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

__all__ = ["train_test_split", "stratified_kfold", "one_vs_rest_labels"]

T = TypeVar("T")


def train_test_split(samples: Sequence[T], labels: np.ndarray, test_fraction: float = 0.3,
                     seed: int = 0, stratify: bool = True,
                     ) -> tuple[list[T], np.ndarray, list[T], np.ndarray]:
    """Split ``samples``/``labels`` into train and test partitions.

    With ``stratify=True`` (default) each class contributes proportionally to
    both partitions, which matters because the paper's label distribution is
    heavily skewed (1991 phishers vs 56 miners).
    """
    labels = np.asarray(labels)
    if len(samples) != len(labels):
        raise ValueError("samples and labels must have the same length")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    test_idx: list[int] = []
    if stratify:
        for value in np.unique(labels):
            class_idx = np.flatnonzero(labels == value)
            rng.shuffle(class_idx)
            n_test = max(1, int(round(len(class_idx) * test_fraction)))
            if n_test >= len(class_idx):
                n_test = len(class_idx) - 1
            test_idx.extend(class_idx[:max(n_test, 0)])
    else:
        order = rng.permutation(len(samples))
        n_test = max(1, int(round(len(samples) * test_fraction)))
        test_idx = list(order[:n_test])
    test_set = set(test_idx)
    train_idx = [i for i in range(len(samples)) if i not in test_set]
    train_samples = [samples[i] for i in train_idx]
    test_samples = [samples[i] for i in sorted(test_set)]
    return (train_samples, labels[train_idx], test_samples, labels[sorted(test_set)])


def stratified_kfold(labels: np.ndarray, n_splits: int = 5, seed: int = 0,
                     ) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return ``n_splits`` (train_idx, test_idx) pairs with per-class balance."""
    labels = np.asarray(labels)
    if n_splits < 2:
        raise ValueError("n_splits must be >= 2")
    rng = np.random.default_rng(seed)
    folds: list[list[int]] = [[] for _ in range(n_splits)]
    for value in np.unique(labels):
        class_idx = np.flatnonzero(labels == value)
        rng.shuffle(class_idx)
        for i, idx in enumerate(class_idx):
            folds[i % n_splits].append(int(idx))
    splits = []
    all_idx = set(range(len(labels)))
    for fold in folds:
        test_idx = np.array(sorted(fold), dtype=int)
        train_idx = np.array(sorted(all_idx - set(fold)), dtype=int)
        splits.append((train_idx, test_idx))
    return splits


def one_vs_rest_labels(categories: Sequence[str | None], positive: str) -> np.ndarray:
    """Binary labels: 1 where the category equals ``positive``, else 0."""
    return np.array([1 if c == positive else 0 for c in categories], dtype=int)
