"""Perf harness: CSR sparse message passing vs the seed dense GNN stack.

Measures, at several subgraph node-count scales:

* ``layer``  — single forward passes of GCN / GAT / SAGE and APPNP propagation,
* ``gsg``    — the GSG hierarchical-attention encoder's subgraph embedding,
* ``ldg``    — one time-sliced LDG step (``slice_representations``: GCN + GRU +
  DiffPool over every slice),
* ``slice``  — building the LDG time-slice sequence itself (CSR vs dense),

each against the faithful dense reference implementations preserved in
:mod:`repro.gnn.dense_reference` (the exact seed math, same layer weights).
Forward outputs are asserted to agree to 1e-9 before timings are recorded.
Results, including speedups, are written to ``BENCH_gnn.json``.

Run::

    PYTHONPATH=src python benchmarks/perf_gnn.py              # 100/400/1200 nodes
    PYTHONPATH=src python benchmarks/perf_gnn.py --scales 80 --output /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.gsg import GSGConfig, _GSGNetwork
from repro.core.ldg import LDGConfig, _LDGNetwork
from repro.data.slicing import time_slice_adjacency, time_slice_csr
from repro.gnn import (
    APPNPPropagation,
    GATLayer,
    GCNLayer,
    GraphSAGELayer,
    SparseAdjacency,
)
from repro.gnn import dense_reference as dense_ref
from repro.graph.txgraph import TxGraph
from repro.nn import Tensor

DEFAULT_SCALES = (100, 400, 1200)
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_gnn.json"
PARITY_ATOL = 1e-9
NUM_SLICES = 5
AVG_DEGREE = 4.0


def synth_subgraph(num_nodes: int, rng: np.random.Generator) -> TxGraph:
    """A random transaction subgraph with ego-subgraph-like connectivity.

    A hub-biased random graph: node 0 is the centre with edges to a large
    fraction of nodes (matching top-K ego sampling), the rest follow a sparse
    Erdős–Rényi pattern at ``AVG_DEGREE`` average degree.
    """
    graph = TxGraph()
    for i in range(num_nodes):
        graph.add_node(i)
    num_random = int(num_nodes * AVG_DEGREE / 2)
    src = rng.integers(0, num_nodes, size=num_random)
    dst = rng.integers(0, num_nodes, size=num_random)
    hub_dst = rng.choice(num_nodes - 1, size=max(num_nodes // 4, 1),
                         replace=False) + 1
    edges = list(zip(src, dst)) + [(0, d) for d in hub_dst]
    for u, v in edges:
        if u == v:
            continue
        graph.add_edge(int(u), int(v), amount=float(rng.lognormal(0.0, 1.0)),
                       timestamp=float(rng.uniform(0.0, 1_000.0)))
    return graph


def _timed(fn, reps: int) -> tuple[float, object]:
    """(best-of-reps wall seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _record(dense_seconds: float, sparse_seconds: float) -> dict:
    return {"dense": dense_seconds, "sparse": sparse_seconds,
            "speedup": dense_seconds / sparse_seconds}


def bench_scale(num_nodes: int, reps: int = 3, seed: int = 7) -> dict:
    """Benchmark one subgraph scale; returns the result record."""
    rng = np.random.default_rng(seed)
    graph = synth_subgraph(num_nodes, rng)
    dense_adj = graph.adjacency_matrix(symmetric=True)
    features = rng.normal(size=(num_nodes, 15))
    edge_features = np.log1p(np.abs(rng.normal(size=(num_nodes, 2))))

    record = {"num_nodes": num_nodes, "num_edges": graph.num_edges,
              "layer": {}, }

    # --- single-layer forwards -------------------------------------------------
    x = Tensor(features)
    layer_specs = [
        ("gcn", GCNLayer(15, 32, rng=np.random.default_rng(0)),
         dense_ref.gcn_forward),
        ("gat", GATLayer(15, 32, rng=np.random.default_rng(0)),
         dense_ref.gat_forward),
        ("sage", GraphSAGELayer(15, 32, rng=np.random.default_rng(0)),
         dense_ref.sage_forward),
        ("appnp", APPNPPropagation(k=5, alpha=0.1), dense_ref.appnp_forward),
    ]
    # Both sides reuse a prebuilt adjacency, the steady-state training pattern:
    # samples cache their CSR form (and its memoized normalisations) across
    # epochs exactly as the dense matrix is prebuilt here.
    sparse_adj = SparseAdjacency.from_graph(graph, symmetric=True)
    for name, layer, dense_fn in layer_specs:
        forward = layer.forward if hasattr(layer, "forward") else layer
        t_sparse, out_sparse = _timed(lambda: forward(x, sparse_adj), reps)
        t_dense, out_dense = _timed(lambda: dense_fn(layer, x, dense_adj), reps)
        assert np.abs(out_sparse.data - out_dense.data).max() < PARITY_ATOL, \
            f"{name} parity violated at n={num_nodes}"
        record["layer"][name] = _record(t_dense, t_sparse)

    # --- GSG encode ------------------------------------------------------------
    gsg = _GSGNetwork(15, 2, GSGConfig(), np.random.default_rng(1))
    t_sparse, emb_sparse = _timed(
        lambda: gsg.embed(features, edge_features, sparse_adj), reps)
    t_dense, emb_dense = _timed(
        lambda: dense_ref.gsg_embed(gsg, features, edge_features, dense_adj), reps)
    assert np.abs(emb_sparse.data - emb_dense.data).max() < PARITY_ATOL, \
        f"GSG encode parity violated at n={num_nodes}"
    record["gsg_encode"] = _record(t_dense, t_sparse)

    # --- time slicing ----------------------------------------------------------
    t_sparse_slices, sparse_slices = _timed(
        lambda: time_slice_csr(graph, NUM_SLICES, weighted=False), reps)
    t_dense_slices, dense_slices = _timed(
        lambda: time_slice_adjacency(graph, NUM_SLICES, weighted=False), reps)
    for sp, dn in zip(sparse_slices, dense_slices):
        assert np.abs(sp.to_dense() - dn).max() < PARITY_ATOL, \
            f"time-slice parity violated at n={num_nodes}"
    record["time_slice"] = _record(t_dense_slices, t_sparse_slices)

    # --- time-sliced LDG step --------------------------------------------------
    ldg = _LDGNetwork(15, LDGConfig(num_slices=NUM_SLICES),
                      np.random.default_rng(2))
    t_sparse, pooled_sparse = _timed(
        lambda: ldg.slice_representations(features, sparse_slices), reps)
    t_dense, pooled_dense = _timed(
        lambda: dense_ref.ldg_slice_representations(ldg, features, dense_slices),
        reps)
    for ps, pd in zip(pooled_sparse, pooled_dense):
        assert np.abs(ps.data - pd.data).max() < PARITY_ATOL, \
            f"LDG step parity violated at n={num_nodes}"
    record["ldg_step"] = _record(t_dense, t_sparse)
    return record


def run(scales=DEFAULT_SCALES, output: Path | None = DEFAULT_OUTPUT,
        reps: int = 3) -> dict:
    results = {"config": {"scales": list(scales), "num_slices": NUM_SLICES,
                          "avg_degree": AVG_DEGREE, "reps": reps, "seed": 7},
               "scales": []}
    for num_nodes in scales:
        record = bench_scale(num_nodes, reps=reps)
        results["scales"].append(record)
        print(f"[{record['num_nodes']:>5} nodes / {record['num_edges']:>5} edges] "
              f"gcn {record['layer']['gcn']['speedup']:5.1f}x | "
              f"gat {record['layer']['gat']['speedup']:5.1f}x | "
              f"gsg {record['gsg_encode']['speedup']:5.1f}x | "
              f"ldg {record['ldg_step']['speedup']:5.1f}x | "
              f"slice {record['time_slice']['speedup']:5.1f}x")
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", type=int, nargs="+", default=list(DEFAULT_SCALES),
                        help="subgraph node counts (default: 100 400 1200)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="path of the JSON results file")
    parser.add_argument("--reps", type=int, default=3,
                        help="best-of repetitions per measurement")
    parser.add_argument("--min-encode-speedup", type=float, default=None,
                        help="fail unless the largest scale hits this GSG and "
                             "LDG encode speedup")
    args = parser.parse_args()
    results = run(scales=tuple(args.scales), output=args.output, reps=args.reps)
    if args.min_encode_speedup is not None:
        largest = results["scales"][-1]
        for key in ("gsg_encode", "ldg_step"):
            got = largest[key]["speedup"]
            assert got >= args.min_encode_speedup, (
                f"{key} speedup {got:.1f}x below {args.min_encode_speedup}x "
                f"at {largest['num_nodes']} nodes")


if __name__ == "__main__":
    main()
