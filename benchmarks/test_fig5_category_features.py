"""Figure 5: distribution of the four grouped category features per account type.

The paper's scatter plot shows that different account categories express
different patterns over the grouped features (SAF / RAF / TFF / CF).  The bench
regenerates the per-category group means and checks that at least one pair of
categories is clearly separated.
"""

import numpy as np

from benchmarks.conftest import record_result
from repro.chain import AccountCategory
from repro.experiments import category_feature_summary


def run(dataset):
    return category_feature_summary(dataset)


def test_fig5_category_features(benchmark, bench_dataset):
    summary = benchmark.pedantic(run, args=(bench_dataset,), rounds=1, iterations=1)

    groups = ("SAF", "RAF", "TFF", "CF")
    lines = ["Figure 5 — mean grouped category features per account type",
             f"{'category':<14}" + "".join(f"{g:>8}" for g in groups)]
    for category, row in sorted(summary.items()):
        lines.append(f"{category:<14}" + "".join(f"{row[g]:8.3f}" for g in groups))
    record_result("fig5_category_features", "\n".join(lines))

    assert set(summary) == {c.value for c in AccountCategory}
    # Paper shape: category profiles differ — the largest pairwise gap across
    # the grouped features is substantial.
    vectors = {cat: np.array([row[g] for g in groups]) for cat, row in summary.items()}
    gaps = [np.abs(vectors[a] - vectors[b]).max()
            for a in vectors for b in vectors if a < b]
    assert max(gaps) > 0.1
    # DeFi / bridge accounts are the most contract-call heavy (CF group).
    assert summary["defi"]["CF"] >= max(summary["exchange"]["CF"], summary["mining"]["CF"])
