"""Perf harness: block-diagonal batched training vs the per-sample loop.

Measures, on a synthetic ledger's ``exchange`` one-vs-rest task:

* ``gsg_fit`` / ``ldg_fit`` — full-``fit`` training-step throughput
  (samples x epochs / second) with ``batch_size`` block-diagonal minibatches
  versus two references: the **legacy per-sample loop** (``batch_size=1``,
  one optimizer step per subgraph — the pre-batching training path and the
  headline baseline) and the **same-schedule looped kernel**
  (``_batched_kernel = False``: identical RNG draws, identical optimizer
  steps, forwards run one sample at a time — the ≤1e-9 parity reference);
* ``gsg_predict`` / ``ldg_predict`` — chunked batched scoring vs sequential
  scoring on the trained branch;
* ``dataset_build`` — sequential vs thread-pool vs process-pool dataset
  construction (bit-identity asserted before timing; thread numbers are
  honest GIL-bound ~1x on single-core boxes, the process pool is the
  scaling path).

Final weights and scores of the batched and looped paths are asserted to
agree to 1e-9 before any timing is recorded.  Results, including speedups,
are written to ``BENCH_train.json``.

Run::

    PYTHONPATH=src python benchmarks/perf_train.py                 # full record
    PYTHONPATH=src python benchmarks/perf_train.py --scale 0.2 \
        --epochs 2 --reps 1 --min-step-speedup 2.0                 # CI smoke
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.chain import LedgerConfig, generate_ledger
from repro.core import GSGBranch, GSGConfig, LDGBranch, LDGConfig
from repro.data import DatasetConfig, SubgraphDatasetBuilder

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_train.json"
PARITY_ATOL = 1e-9


def _timed(fn, reps: int) -> tuple[float, object]:
    """(best-of-reps wall seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def build_task(scale: float, seed: int):
    """(builder factory, samples, labels) for the exchange one-vs-rest task.

    Subgraph extraction matches the table-3 smoke regime
    (``tests/test_experiments.py``: ``top_k=20, max_nodes_per_subgraph=25``) —
    the paper's workload is many small account ego-subgraphs, which is exactly
    the regime block-diagonal batching targets.
    """
    config = LedgerConfig().scaled(scale)
    config.seed = seed
    ledger = generate_ledger(config)
    dataset_config = DatasetConfig(top_k=20, max_nodes_per_subgraph=25, seed=3)

    def make_builder() -> SubgraphDatasetBuilder:
        return SubgraphDatasetBuilder(ledger, dataset_config)

    dataset = make_builder().build()
    samples, labels = dataset.binary_task("exchange",
                                          rng=np.random.default_rng(0))
    return make_builder, samples, labels


def _max_weight_diff(a, b) -> float:
    return max(float(np.abs(pa.data - pb.data).max())
               for pa, pb in zip(a._network.parameters(),
                                 b._network.parameters()))


def bench_branch(name: str, branch_cls, config_factory, samples, labels,
                 reps: int) -> dict:
    """Parity-check then time one branch's batched vs reference training.

    The headline ``fit.speedup`` compares against the legacy per-sample loop
    (``batch_size=1`` — one optimizer step per subgraph, the pre-batching
    path); ``fit.speedup_vs_looped`` compares against the same-minibatch-
    schedule looped kernel that the ≤1e-9 parity assertion runs against.
    """
    epochs = config_factory().epochs

    def fit(batched_kernel: bool, batch_size: int | None = None):
        config = config_factory()
        if batch_size is not None:
            config.batch_size = batch_size
        branch = branch_cls(config)
        branch._batched_kernel = batched_kernel
        branch.fit(samples, labels)
        return branch

    # --- parity before timing ----------------------------------------------
    batched, looped = fit(True), fit(False)
    weight_diff = _max_weight_diff(batched, looped)
    assert weight_diff < PARITY_ATOL, \
        f"{name} fit parity violated: max weight diff {weight_diff:.3e}"
    scores_batched = batched.predict_scores(samples)
    batched._batched_kernel = False
    scores_looped = batched.predict_scores(samples)
    batched._batched_kernel = True
    score_diff = float(np.abs(scores_batched - scores_looped).max())
    assert score_diff < PARITY_ATOL, \
        f"{name} predict parity violated: max score diff {score_diff:.3e}"
    # Identical scores ⇒ identical train accuracy; record it to make the
    # "same final accuracy" claim explicit in the artifact.
    accuracy = float(((scores_batched > 0).astype(float)
                      == np.asarray(labels, dtype=float)).mean())

    # --- timing -------------------------------------------------------------
    steps = len(samples) * epochs
    t_batched, _ = _timed(lambda: fit(True), reps)
    t_looped, _ = _timed(lambda: fit(False), reps)
    t_legacy, _ = _timed(lambda: fit(False, batch_size=1), reps)

    def predict(batched_kernel: bool):
        batched._batched_kernel = batched_kernel
        return batched.predict_scores(samples)

    tp_batched, _ = _timed(lambda: predict(True), reps)
    tp_looped, _ = _timed(lambda: predict(False), reps)
    batched._batched_kernel = True
    return {
        "num_samples": len(samples),
        "epochs": epochs,
        "max_weight_diff": weight_diff,
        "max_score_diff": score_diff,
        "train_accuracy": accuracy,
        "fit": {"batched_seconds": t_batched,
                "legacy_per_sample_seconds": t_legacy,
                "looped_seconds": t_looped,
                "batched_steps_per_second": steps / t_batched,
                "legacy_steps_per_second": steps / t_legacy,
                "looped_steps_per_second": steps / t_looped,
                "speedup": t_legacy / t_batched,
                "speedup_vs_looped": t_looped / t_batched},
        "predict": {"batched_seconds": tp_batched, "looped_seconds": tp_looped,
                    "speedup": tp_looped / tp_batched},
    }


def bench_build(make_builder, workers: int, reps: int,
                include_process: bool = True) -> dict:
    """Sequential vs thread vs process dataset build (bit-identity first)."""
    reference = make_builder().build()

    def check(dataset) -> None:
        assert len(dataset) == len(reference)
        for got, expected in zip(dataset.samples, reference.samples):
            assert got.center == expected.center
            assert got.category == expected.category
            assert np.array_equal(got.node_features, expected.node_features), \
                f"parallel build diverged at centre {got.center}"

    modes: dict[str, dict] = {}
    t_seq, _ = _timed(lambda: make_builder().build(), reps)
    modes["sequential"] = {"seconds": t_seq}
    plans = [("thread", workers)]
    if include_process:
        plans.append(("process", workers))
    for mode, n in plans:
        built = make_builder().build(workers=n, mode=mode)
        check(built)
        t, _ = _timed(lambda: make_builder().build(workers=n, mode=mode), reps)
        modes[mode] = {"seconds": t, "workers": n, "speedup": t_seq / t}
    return {"num_samples": len(reference), "modes": modes}


def run(scale: float = 1.2, batch_size: int = 32, epochs: int = 20,
        reps: int = 3, workers: int = 4, include_process: bool = True,
        output: Path | None = DEFAULT_OUTPUT, seed: int = 11) -> dict:
    make_builder, samples, labels = build_task(scale, seed)
    print(f"task: {len(samples)} samples "
          f"(batch_size={batch_size}, epochs={epochs})")

    results = {"config": {"scale": scale, "batch_size": batch_size,
                          "epochs": epochs, "reps": reps, "workers": workers,
                          "seed": seed, "parity_atol": PARITY_ATOL},
               "branches": {}}
    branch_specs = [
        ("gsg", GSGBranch, lambda: GSGConfig(
            hidden_dim=16, epochs=epochs, contrastive_batch=6,
            batch_size=batch_size)),
        ("ldg", LDGBranch, lambda: LDGConfig(
            hidden_dim=16, epochs=epochs, num_slices=4,
            first_pool_clusters=6, batch_size=batch_size)),
    ]
    for name, branch_cls, config_factory in branch_specs:
        record = bench_branch(name, branch_cls, config_factory, samples,
                              labels, reps)
        results["branches"][name] = record
        print(f"[{name}] fit {record['fit']['speedup']:5.2f}x vs per-sample "
              f"loop ({record['fit']['speedup_vs_looped']:4.2f}x vs looped "
              f"schedule, {record['fit']['batched_steps_per_second']:7.1f} vs "
              f"{record['fit']['legacy_steps_per_second']:7.1f} steps/s) | "
              f"predict {record['predict']['speedup']:5.2f}x | "
              f"weight diff {record['max_weight_diff']:.2e}")

    branches = results["branches"].values()
    results["combined_fit_speedup"] = (
        sum(b["fit"]["legacy_per_sample_seconds"] for b in branches)
        / sum(b["fit"]["batched_seconds"] for b in branches))
    print(f"[combined] GSG+LDG training {results['combined_fit_speedup']:.2f}x "
          f"vs the per-sample loop")

    results["dataset_build"] = bench_build(make_builder, workers, reps,
                                           include_process=include_process)
    build_line = " | ".join(
        f"{mode} {record['seconds']:.2f}s"
        + (f" ({record['speedup']:.2f}x)" if "speedup" in record else "")
        for mode, record in results["dataset_build"]["modes"].items())
    print(f"[build] {build_line}")

    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.2,
                        help="ledger scale multiplier (default: 1.2)")
    parser.add_argument("--batch-size", type=int, default=32,
                        help="block-diagonal minibatch size (default: 32)")
    parser.add_argument("--epochs", type=int, default=20,
                        help="training epochs per fit (default: 20)")
    parser.add_argument("--reps", type=int, default=3,
                        help="best-of repetitions per measurement")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool size for the dataset-build sweep")
    parser.add_argument("--skip-process", action="store_true",
                        help="skip the process-pool build measurement")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="path of the JSON results file")
    parser.add_argument("--min-step-speedup", type=float, default=None,
                        help="fail unless both branches hit this batched-fit "
                             "speedup over the legacy per-sample loop")
    args = parser.parse_args()
    results = run(scale=args.scale, batch_size=args.batch_size,
                  epochs=args.epochs, reps=args.reps, workers=args.workers,
                  include_process=not args.skip_process, output=args.output)
    if args.min_step_speedup is not None:
        for name, record in results["branches"].items():
            got = record["fit"]["speedup"]
            assert got >= args.min_step_speedup, (
                f"{name} batched fit speedup {got:.2f}x below "
                f"{args.min_step_speedup}x floor")


if __name__ == "__main__":
    main()
