"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on a
scaled-down synthetic ledger.  The dataset is session-scoped so the whole suite
builds it once, and every bench writes its formatted output both to stdout and
to ``benchmarks/results/<name>.txt`` so the regenerated rows survive pytest's
output capturing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig, build_experiment_dataset

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark-wide scale: small enough that the full suite finishes in minutes,
#: large enough that every category has several positive samples.
BENCH_CONFIG = ExperimentConfig(scale=0.35, top_k=40, max_nodes_per_subgraph=40, seed=7)

#: Number of training epochs used by every learned model in the benches.
BENCH_EPOCHS = 6


@pytest.fixture(scope="session")
def bench_dataset():
    dataset, _ledger = build_experiment_dataset(BENCH_CONFIG)
    return dataset


@pytest.fixture(scope="session")
def bench_ledger():
    _dataset, ledger = build_experiment_dataset(BENCH_CONFIG)
    return ledger


def record_result(name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
