"""Perf harness: the scenario synthesis engine at 10M-transaction scale.

Measures, at several transaction-count scales, the full synthetic-data path
the scenario engine rewrote:

* ``synthesize`` — account registration + per-category vectorised scenario
  synthesis (columnar ``RawTxBlock`` output, zero per-tx Python objects),
* ``assemble``   — timestamp sort + bulk columnar append into the ledger,
* ``graph``      — global transaction-graph construction.

The headline configuration generates and graphs a ten-million-transaction
ledger; ``--max-total-seconds`` turns the ISSUE's under-60-s budget into a
hard failure, and ``--min-throughput`` floors the generation throughput
(transactions per second over synthesize + assemble) so CI catches
regressions at reduced scale.  Per-scenario synthesis timings are recorded at
the largest scale, every scenario's statistical self-check runs once on
healthy pools, and a classification smoke verifies the three post-paper
attack families (wash-trading, airdrop-farming, mixer) survive the full
pipeline, with per-category precision/recall/F1 stored alongside the timing
rows in ``BENCH_synth.json``.

Run::

    PYTHONPATH=src python benchmarks/perf_synth.py                 # 100k/1M/10M
    PYTHONPATH=src python benchmarks/perf_synth.py --scales 50000 \
        --min-throughput 200000 --skip-classify                    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.chain import Ledger, LedgerConfig, LedgerGenerator
from repro.chain.scenarios import registered_scenarios
from repro.data.pipeline import build_transaction_graph

#: Transactions generated per unit of LedgerConfig scale with seed 7
#: (measured on the nine-scenario engine at scale 100).
_TXS_PER_UNIT_SCALE = 8316.0

DEFAULT_SCALES = (100_000, 1_000_000, 10_000_000)
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_synth.json"


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def bench_scale(target_txs: int, seed: int = 7, build_graph: bool = True) -> dict:
    """Generate (and optionally graph) one scale; returns the result record."""
    config = LedgerConfig().scaled(target_txs / _TXS_PER_UNIT_SCALE)
    config.seed = seed
    gen = LedgerGenerator(config)
    rng = np.random.default_rng(config.seed)
    ledger = Ledger(genesis_timestamp=config.start_timestamp)

    synthesize_time, raw = _timed(lambda: gen.synthesize(ledger, rng))
    assemble_time, _ = _timed(lambda: gen._assemble_blocks_columnar(ledger, raw, rng))
    generation_time = synthesize_time + assemble_time
    record = {
        "target_transactions": target_txs,
        "num_transactions": ledger.num_transactions,
        "num_accounts": ledger.num_accounts,
        "synthesize_seconds": synthesize_time,
        "assemble_seconds": assemble_time,
        "generation_seconds": generation_time,
        "generation_txs_per_second": ledger.num_transactions / generation_time,
    }
    if build_graph:
        graph_time, graph = _timed(lambda: build_transaction_graph(ledger))
        record.update(
            graph_seconds=graph_time,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            total_seconds=generation_time + graph_time,
        )
    return record


def bench_per_scenario(target_txs: int, seed: int = 7) -> dict[str, dict]:
    """Time each registered scenario's synthesis in isolation.

    Pools mirror what the generator would hand the scenario at this scale:
    the scaled config's per-category centre count and background/contract
    populations (as plain id ranges — synthesis only touches ids).
    """
    config = LedgerConfig().scaled(target_txs / _TXS_PER_UNIT_SCALE)
    users = np.arange(config.num_background_users, dtype=np.int64)
    contracts = np.arange(len(users), len(users) + config.num_contracts,
                          dtype=np.int64)
    next_id = len(users) + len(contracts)
    timings: dict[str, dict] = {}
    for category, scenario in registered_scenarios().items():
        count = config.labeled_per_category[category]
        centers = np.arange(next_id, next_id + count, dtype=np.int64)
        next_id += count
        rng = np.random.default_rng(seed)
        elapsed, block = _timed(lambda: scenario.synthesize(
            centers, users, contracts, rng, config.start_timestamp,
            config.timespan))
        timings[category.value] = {
            "centers": count,
            "transactions": len(block),
            "seconds": elapsed,
            "txs_per_second": len(block) / elapsed if elapsed > 0 else None,
        }
    return timings


def run_self_checks(seed: int = 7) -> dict[str, int]:
    """Every scenario's statistical envelope must hold on healthy pools."""
    users = np.arange(400, dtype=np.int64)
    contracts = np.arange(400, 440, dtype=np.int64)
    start, span = 1_438_900_000.0, 3600.0 * 24 * 365
    checked: dict[str, int] = {}
    next_id = 440
    for category, scenario in registered_scenarios().items():
        centers = np.arange(next_id, next_id + 12, dtype=np.int64)
        next_id += 12
        block = scenario.synthesize(centers, users, contracts,
                                    np.random.default_rng(seed), start, span)
        scenario.self_check(block, centers, start, span)
        checked[category.value] = len(block)
    return checked


def bench_classification(seed: int = 7, scale: float = 0.35,
                         epochs: int = 6) -> dict[str, dict[str, float]]:
    """End-to-end classification of the three new attack families."""
    from repro.chain import AccountCategory
    from repro.core import DBG4ETH
    from repro.experiments import ExperimentConfig, build_experiment_dataset, \
        run_category_experiment
    from repro.experiments.runner import fast_dbg4eth_config

    dataset, _ledger = build_experiment_dataset(
        ExperimentConfig(scale=scale, top_k=40, max_nodes_per_subgraph=40,
                         seed=seed))
    results: dict[str, dict[str, float]] = {}
    for category in AccountCategory.attack_families():
        results[category.value] = run_category_experiment(
            dataset, category,
            model_factory=lambda: DBG4ETH(fast_dbg4eth_config(epochs=epochs)),
            seed=seed)
    return results


def run(scales=DEFAULT_SCALES, output: Path | None = DEFAULT_OUTPUT,
        seed: int = 7, classify: bool = True,
        classify_scale: float = 0.35) -> dict:
    results = {"config": {"seed": seed, "scales": list(scales),
                          "txs_per_unit_scale": _TXS_PER_UNIT_SCALE},
               "scales": []}

    results["self_check_rows"] = run_self_checks(seed=seed)
    print(f"[self-check] all {len(results['self_check_rows'])} scenarios "
          f"within statistical envelopes")

    for target in scales:
        record = bench_scale(target, seed=seed)
        results["scales"].append(record)
        print(f"[{record['num_transactions']:>9} txs] "
              f"synthesize {record['synthesize_seconds']:7.2f} s | "
              f"assemble {record['assemble_seconds']:7.2f} s | "
              f"graph {record['graph_seconds']:7.2f} s | "
              f"total {record['total_seconds']:7.2f} s | "
              f"{record['generation_txs_per_second']:,.0f} txs/s generated")

    if scales:
        headline = max(scales)
        results["per_scenario"] = bench_per_scenario(headline, seed=seed)
        width = max(len(name) for name in results["per_scenario"])
        for name, row in sorted(results["per_scenario"].items(),
                                key=lambda kv: -kv[1]["seconds"]):
            print(f"[scenario] {name:<{width}} {row['transactions']:>9} txs "
                  f"in {row['seconds']*1e3:8.1f} ms")

    if classify:
        results["classification"] = bench_classification(
            seed=seed, scale=classify_scale)
        for name, report in results["classification"].items():
            print(f"[classify] {name:<16} f1 {report['f1']:.3f} "
                  f"precision {report['precision']:.3f} "
                  f"recall {report['recall']:.3f} "
                  f"accuracy {report['accuracy']:.3f}")

    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", type=int, nargs="+",
                        default=list(DEFAULT_SCALES),
                        help="target transaction counts "
                             "(default: 100000 1000000 10000000)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="path of the JSON results file")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--skip-classify", action="store_true",
                        help="skip the new-family classification smoke")
    parser.add_argument("--classify-scale", type=float, default=0.35,
                        help="ledger scale for the classification smoke")
    parser.add_argument("--min-throughput", type=float, default=None,
                        help="fail unless every scale generates at least this "
                             "many transactions per second")
    parser.add_argument("--max-total-seconds", type=float, default=None,
                        help="fail if the largest scale's generate+graph "
                             "wall-clock exceeds this budget")
    parser.add_argument("--min-f1", type=float, default=None,
                        help="fail unless every new family's classification "
                             "F1 reaches this floor")
    args = parser.parse_args()
    results = run(scales=tuple(args.scales), output=args.output,
                  seed=args.seed, classify=not args.skip_classify,
                  classify_scale=args.classify_scale)
    if args.min_throughput is not None:
        for record in results["scales"]:
            got = record["generation_txs_per_second"]
            assert got >= args.min_throughput, (
                f"generation throughput {got:,.0f} txs/s below "
                f"{args.min_throughput:,.0f} at "
                f"{record['num_transactions']} txs")
    if args.max_total_seconds is not None and results["scales"]:
        largest = max(results["scales"], key=lambda r: r["num_transactions"])
        got = largest["total_seconds"]
        assert got <= args.max_total_seconds, (
            f"generate+graph took {got:.1f} s at "
            f"{largest['num_transactions']} txs, over the "
            f"{args.max_total_seconds:.0f} s budget")
    if args.min_f1 is not None:
        reports = results.get("classification")
        assert reports, "--min-f1 needs the classification smoke"
        for name, report in reports.items():
            assert report["f1"] >= args.min_f1, (
                f"{name} classification F1 {report['f1']:.3f} below "
                f"{args.min_f1:.2f}")


if __name__ == "__main__":
    main()
