"""Figure 4: correlation heat map of the 15-dimensional node features.

The paper's conclusion from this figure is that no pair of deep features is
redundantly correlated (|r| close to 1 off the diagonal), so all 15 can be used
for training.  The bench regenerates the correlation matrix and checks that
conclusion.
"""

import numpy as np

from benchmarks.conftest import record_result
from repro.experiments import feature_correlation_matrix


def run(dataset):
    return feature_correlation_matrix(dataset)


def test_fig4_feature_correlation(benchmark, bench_dataset):
    correlation, names = benchmark.pedantic(run, args=(bench_dataset,), rounds=1, iterations=1)

    lines = ["Figure 4 — 15-dimensional feature correlation matrix",
             " " * 10 + "".join(f"{name:>9}" for name in names)]
    for i, name in enumerate(names):
        lines.append(f"{name:<10}" + "".join(f"{correlation[i, j]:9.2f}" for j in range(len(names))))
    record_result("fig4_feature_correlation", "\n".join(lines))

    assert correlation.shape == (15, 15)
    np.testing.assert_allclose(np.diag(correlation), np.ones(15), atol=1e-9)
    off_diagonal = correlation[~np.eye(15, dtype=bool)]
    # Paper shape: features are not redundant — most off-diagonal correlations are
    # far from +/-1 (the strongest observed pairs are value/fee aggregates).
    assert np.mean(np.abs(off_diagonal) > 0.95) < 0.2
