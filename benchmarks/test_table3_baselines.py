"""Table III: DBG4ETH vs baseline methods on the four core account categories.

The paper compares 14 baselines across exchange / ico-wallet / mining /
phish/hack; the expected *shape* is that DBG4ETH posts the best F1 on every
category.  To keep the bench within minutes, a representative subset of
baselines from each family is run (one walk-embedding method, several GNNs and
the Ethereum-specific methods); the full registry is available through
``repro.baselines.baseline_registry``.
"""

import numpy as np

from benchmarks.conftest import BENCH_EPOCHS, record_result
from repro.baselines import (
    BERT4ETHClassifier,
    DeepWalkClassifier,
    EthidentClassifier,
    GATClassifier,
    GCNClassifier,
    GINClassifier,
    GraphSAGEClassifier,
    I2BGNNClassifier,
    TEGDetectorClassifier,
)
from repro.experiments import format_table, run_baseline_comparison
from repro.experiments.runner import fast_dbg4eth_config
import pytest

pytestmark = pytest.mark.slow  # full training loop; skip with -m 'not slow'

CATEGORIES = ["exchange", "ico-wallet", "mining", "phish/hack"]


def bench_baselines():
    return {
        "DeepWalk": DeepWalkClassifier(dim=8, walk_length=8, walks_per_node=1, seed=0),
        "GCN": GCNClassifier(hidden_dim=16, epochs=BENCH_EPOCHS, seed=0),
        "GAT": GATClassifier(hidden_dim=16, epochs=BENCH_EPOCHS, seed=0),
        "GIN": GINClassifier(hidden_dim=16, epochs=BENCH_EPOCHS, seed=0),
        "GraphSAGE": GraphSAGEClassifier(hidden_dim=16, epochs=BENCH_EPOCHS, seed=0),
        "I2BGNN": I2BGNNClassifier(hidden_dim=16, epochs=BENCH_EPOCHS, seed=0),
        "Ethident": EthidentClassifier(hidden_dim=16, epochs=BENCH_EPOCHS, seed=0),
        "TEGDetector": TEGDetectorClassifier(hidden_dim=16, epochs=BENCH_EPOCHS, seed=0),
        "BERT4ETH": BERT4ETHClassifier(hidden_dim=16, epochs=BENCH_EPOCHS, seed=0),
    }


def run_comparison(dataset):
    return run_baseline_comparison(
        dataset, CATEGORIES, baselines=bench_baselines(), include_dbg4eth=True,
        dbg4eth_config=fast_dbg4eth_config(epochs=BENCH_EPOCHS), seed=7)


def test_table3_baseline_comparison(benchmark, bench_dataset):
    results = benchmark.pedantic(run_comparison, args=(bench_dataset,), rounds=1, iterations=1)
    record_result("table3_baselines",
                  format_table(results, title="Table III — F1 per method and category",
                               metric="f1"))

    assert set(results["DBG4ETH"]) == set(CATEGORIES)
    dbg_f1 = np.mean([results["DBG4ETH"][c]["f1"] for c in CATEGORIES])
    baseline_means = [np.mean([per_category[c]["f1"] for c in CATEGORIES])
                      for method, per_category in results.items() if method != "DBG4ETH"]
    # Paper shape: DBG4ETH is competitive with the baseline field.  At bench
    # scale the held-out splits hold only a handful of graphs, so the robust
    # claim asserted here is "not below the median baseline" rather than strict
    # dominance (see EXPERIMENTS.md for the discussion).
    assert dbg_f1 >= np.median(baseline_means) - 0.15
    assert dbg_f1 >= 0.4
