"""Figure 9: hyperparameter sensitivity of the GSG and LDG encoders.

(a) GSG: F1 as a function of the augmentation strengths (edge-drop / feature-
    mask probabilities).  The paper finds the model robust for small values and
    degrading when the probabilities become large.
(b) LDG: F1 as a function of the number of DiffPool layers (1-3), with only a
    small effect overall.
"""

import numpy as np

from benchmarks.conftest import BENCH_EPOCHS, record_result
from repro.core.augmentation import AugmentationConfig
from repro.experiments import sensitivity_study
from repro.experiments.runner import fast_dbg4eth_config
import pytest

pytestmark = pytest.mark.slow  # full training loop; skip with -m 'not slow'

AUGMENTATION_PROBS = (0.1, 0.4, 0.8)
POOLING_LAYERS = (1, 2, 3)


def config_factory(edge_drop=None, feature_mask=None, pooling_layers=None):
    config = fast_dbg4eth_config(epochs=BENCH_EPOCHS)
    if edge_drop is not None:
        config.gsg.view1 = AugmentationConfig(edge_drop, feature_mask or 0.0)
        config.gsg.view2 = AugmentationConfig(edge_drop, 0.0)
    if pooling_layers is not None:
        config.ldg.pooling_layers = pooling_layers
    return config


def run(dataset):
    return sensitivity_study(dataset, "exchange", config_factory,
                             augmentation_probs=AUGMENTATION_PROBS,
                             pooling_layers=POOLING_LAYERS, seed=7)


def test_fig9_hyperparameter_sensitivity(benchmark, bench_dataset):
    study = benchmark.pedantic(run, args=(bench_dataset,), rounds=1, iterations=1)

    lines = ["Figure 9 — hyperparameter sensitivity (exchange)",
             "GSG augmentation probability -> F1:"]
    lines += [f"  P_e = P_f = {p:<4} F1 = {study['augmentation'][p] * 100:6.2f}"
              for p in AUGMENTATION_PROBS]
    lines.append("LDG pooling layers -> F1:")
    lines += [f"  layers = {k}      F1 = {study['pooling'][k] * 100:6.2f}"
              for k in POOLING_LAYERS]
    record_result("fig9_sensitivity", "\n".join(lines))

    augmentation = np.array([study["augmentation"][p] for p in AUGMENTATION_PROBS])
    pooling = np.array([study["pooling"][k] for k in POOLING_LAYERS])
    assert np.all((augmentation >= 0.0) & (augmentation <= 1.0))
    assert np.all((pooling >= 0.0) & (pooling <= 1.0))
    # Paper shape: moderate augmentation is not worse than extreme augmentation,
    # and the pooling depth has a limited effect.
    assert augmentation[:2].max() >= augmentation[-1] - 0.05
    assert pooling.max() - pooling.min() <= 0.5
