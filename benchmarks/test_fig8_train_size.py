"""Figure 8: effect of the training-set size on bridge / DeFi performance (RQ4).

The paper varies the training fraction from 10% to 50% and finds that a small
fraction already reaches near-final performance.  The bench regenerates the
sweep and checks that the F1 at 50% training data is not dramatically better
than the best small-fraction F1 (i.e. performance saturates early).
"""

import numpy as np

from benchmarks.conftest import BENCH_EPOCHS, record_result
from repro.experiments import run_training_size_sweep
from repro.experiments.runner import fast_dbg4eth_config
import pytest

pytestmark = pytest.mark.slow  # full training loop; skip with -m 'not slow'

# Four points of the paper's 10%-50% grid; at bench scale the smallest
# fractions leave only a couple of positive samples, so the sweep starts at 20%.
FRACTIONS = (0.2, 0.3, 0.4, 0.5)


def run(dataset):
    results = {}
    for category in ("bridge", "defi"):
        results[category] = run_training_size_sweep(
            dataset, category, fractions=FRACTIONS,
            config_factory=lambda: fast_dbg4eth_config(epochs=BENCH_EPOCHS), seed=7)
    return results


def test_fig8_training_size_sweep(benchmark, bench_dataset):
    results = benchmark.pedantic(run, args=(bench_dataset,), rounds=1, iterations=1)

    lines = ["Figure 8 — F1 vs training fraction (bridge and defi)",
             f"{'category':<10}" + "".join(f"{f:>10.0%}" for f in FRACTIONS)]
    for category, sweep in results.items():
        lines.append(f"{category:<10}" + "".join(f"{sweep[f]['f1'] * 100:10.2f}" for f in FRACTIONS))
    record_result("fig8_train_size", "\n".join(lines))

    for category, sweep in results.items():
        f1_values = np.array([sweep[f]["f1"] for f in FRACTIONS])
        assert np.all((f1_values >= 0.0) & (f1_values <= 1.0))
        # Paper shape: a small labelled fraction already performs close to the
        # largest fraction (early saturation).
        assert f1_values[:-1].max() >= f1_values[-1] - 0.25, category
