"""Perf harness: columnar ledger + graph build vs the per-object seed paths.

Measures, at several transaction-count scales, the two stages that the
columnar transaction store rewrote:

* ``assemble`` — block assembly + ledger registration from the behaviours'
  raw transaction tuples (``LedgerGenerator._assemble_blocks_columnar`` vs
  the preserved per-``Transaction`` object path), and
* ``graph``    — global transaction-graph construction
  (``build_transaction_graph`` columnar bulk ingest vs the per-object loop).

Scenario raw-tx synthesis is timed separately (``synthesize_seconds``): it
is identical for both paths — the same vectorised RNG stream — so it is
excluded from the headline speedup but included in the end-to-end times.
Both paths must produce bit-identical ledgers and graphs; parity is asserted
before any timing is recorded.  Results land in ``BENCH_ledger.json``,
including a million-transaction row in the default configuration.

On top of the scale sweep, the **follow-the-chain** demo exercises the
durable backend end to end: persist a ~100k-tx ledger, restart it from disk
via ``Ledger.open`` (memory-mapped — no rebuild), score a batch of addresses,
append ~10k transactions through the columnar path, and rescore the touched
addresses incrementally (graph ``ingest`` + lazy feature-table refresh + an
O(new rows) ``sync``).  The incremental samples must be bit-identical to a
cold pipeline rebuilt over the grown ledger before any timing is recorded;
the record lands next to the scale rows in ``BENCH_ledger.json``.

Run::

    PYTHONPATH=src python benchmarks/perf_ledger.py              # 10k/100k/1M + follow-chain
    PYTHONPATH=src python benchmarks/perf_ledger.py --scales 20000 --min-speedup 2
    PYTHONPATH=src python benchmarks/perf_ledger.py --skip-scales \
        --base-txs 100000 --append-txs 10000 --min-open-speedup 5
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.chain import LedgerConfig, Ledger, LedgerGenerator, generate_ledger
from repro.data.dataset import DatasetConfig, SubgraphDatasetBuilder
from repro.data.features import DeepFeatureExtractor
from repro.data.pipeline import build_transaction_graph

#: Transactions generated per unit of LedgerConfig scale with seed 7
#: (measured on the nine-scenario engine at scale 100).
_TXS_PER_UNIT_SCALE = 8316.0

DEFAULT_SCALES = (10_000, 100_000, 1_000_000)
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_ledger.json"


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _assert_ledger_parity(columnar: Ledger, objects: Ledger) -> None:
    cc, co = columnar.tx_columns(), objects.tx_columns()
    for name in ("sender_id", "receiver_id", "value", "gas_price", "gas_used",
                 "timestamp", "is_contract_call", "submitted", "block_number"):
        assert np.array_equal(getattr(cc, name), getattr(co, name)), \
            f"ledger parity violated on column {name}"
    assert columnar.store.addresses == objects.store.addresses, \
        "ledger parity violated on the interning table"
    assert columnar.num_blocks == objects.num_blocks


def _assert_graph_parity(columnar, objects) -> None:
    assert columnar.nodes == objects.nodes, "graph parity violated on nodes"
    feats_c = columnar.edge_feature_matrix()
    feats_o = objects.edge_feature_matrix()
    assert np.array_equal(feats_c, feats_o), "graph parity violated on edges"
    ts_c = np.array([e.timestamp for e in columnar.edges])
    ts_o = np.array([e.timestamp for e in objects.edges])
    assert np.array_equal(ts_c, ts_o), "graph parity violated on timestamps"


def bench_scale(target_txs: int, seed: int = 7, skip_object: bool = False) -> dict:
    """Benchmark one transaction-count scale; returns the result record."""
    config = LedgerConfig().scaled(target_txs / _TXS_PER_UNIT_SCALE)
    config.seed = seed
    gen = LedgerGenerator(config)

    # Both assembly paths start from identical synthesized raw columns and
    # RNG state (synthesis registers accounts/labels and pre-interns ids into
    # the ledger it is given, so each path gets its own identically-seeded run).
    rng_col = np.random.default_rng(config.seed)
    columnar_ledger = Ledger(genesis_timestamp=config.start_timestamp)
    synthesize_time, raw = _timed(lambda: gen.synthesize(columnar_ledger, rng_col))
    assemble_col, _ = _timed(lambda: gen._assemble_blocks_columnar(
        columnar_ledger, raw, rng_col))
    record = {
        "target_transactions": target_txs,
        "num_transactions": columnar_ledger.num_transactions,
        "num_accounts": columnar_ledger.num_accounts,
        "synthesize_seconds": synthesize_time,
        "assemble_seconds": {"columnar": assemble_col},
        "graph_seconds": {},
    }

    if not skip_object:
        rng_obj = np.random.default_rng(config.seed)
        object_ledger = Ledger(genesis_timestamp=config.start_timestamp)
        raw_obj = gen.synthesize(object_ledger, rng_obj)
        assemble_obj, _ = _timed(lambda: gen._assemble_blocks_objects(
            object_ledger, raw_obj, rng_obj))
        _assert_ledger_parity(columnar_ledger, object_ledger)
        record["assemble_seconds"].update(
            object=assemble_obj, speedup=assemble_obj / assemble_col)

    graph_col_time, graph_col = _timed(
        lambda: build_transaction_graph(columnar_ledger, columnar=True))
    record["graph_seconds"]["columnar"] = graph_col_time
    record["num_nodes"] = graph_col.num_nodes
    record["num_edges"] = graph_col.num_edges

    if not skip_object:
        graph_obj_time, graph_obj = _timed(
            lambda: build_transaction_graph(columnar_ledger, columnar=False))
        _assert_graph_parity(graph_col, graph_obj)
        record["graph_seconds"].update(
            object=graph_obj_time, speedup=graph_obj_time / graph_col_time)
        record["ledger_graph_speedup"] = ((assemble_obj + graph_obj_time)
                                          / (assemble_col + graph_col_time))
        record["end_to_end_seconds"] = {
            "columnar": synthesize_time + assemble_col + graph_col_time,
            "object": synthesize_time + assemble_obj + graph_obj_time,
            "speedup": ((synthesize_time + assemble_obj + graph_obj_time)
                        / (synthesize_time + assemble_col + graph_col_time)),
        }

    # Single-pass feature table straight from the column arrays (info only).
    extractor = DeepFeatureExtractor(columnar_ledger)
    extract_time, _ = _timed(lambda: extractor.extract_many(graph_col.nodes[:100]))
    record["extract_table_seconds"] = extract_time
    return record


def _append_follow_up_txs(ledger: Ledger, n: int, touch: list[str],
                          seed: int) -> None:
    """Append ``n`` submitted transactions via the columnar bulk path.

    Every address in ``touch`` sends/receives part of the traffic, so the
    scored batch demonstrably gains transactions; the rest is background
    churn over existing accounts.
    """
    rng = np.random.default_rng(seed)
    existing = ledger.store.addresses
    picks = rng.integers(0, len(existing), size=2 * n)
    senders = [existing[picks[2 * i]] for i in range(n)]
    receivers = [existing[picks[2 * i + 1]] for i in range(n)]
    for i, address in enumerate(touch):
        senders[i % n] = address
        receivers[(i + len(touch)) % n] = address
    start_ts = ledger.timespan()[1] + ledger.block_interval
    ledger.append_blocks_columnar(
        senders, receivers,
        values=rng.uniform(0.5, 20.0, n),
        gas_prices=rng.uniform(10.0, 60.0, n),
        gas_used=np.full(n, 21_000, dtype=np.int64),
        timestamps=start_ts + np.arange(n, dtype=np.float64) * 0.2,
        is_contract_call=np.zeros(n, dtype=bool),
        submitted=np.ones(n, dtype=bool),
        transactions_per_block=50)


def bench_follow_chain(base_txs: int = 100_000, append_txs: int = 10_000,
                       seed: int = 7, score_batch: int = 16) -> dict:
    """The durable-backend demo: persist, restart from disk, score, append,
    rescore incrementally — bit-identical to a cold rebuild.

    Returns the timing record (all stages, plus the derived
    ``restart_speedup_vs_regenerate`` and ``append_rescore_ms`` headline
    numbers).  Raises ``AssertionError`` if the incremental samples diverge
    from the cold pipeline by a single bit.
    """
    config = LedgerConfig().scaled(base_txs / _TXS_PER_UNIT_SCALE)
    config.seed = seed
    generate_time, ledger = _timed(lambda: generate_ledger(config))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "chain"
        sync_time, manifest = _timed(lambda: ledger.sync(path))
        assert manifest["num_rows"] == ledger.num_transactions

        # Restart from disk: O(metadata) open, columns memory-mapped.
        open_time, reopened = _timed(lambda: Ledger.open(path))
        assert reopened.num_transactions == ledger.num_transactions
        assert reopened.data_version == ledger.data_version
        assert reopened.store.addresses == ledger.store.addresses

        dataset_config = DatasetConfig(top_k=30, max_nodes_per_subgraph=40, seed=3)
        builder = SubgraphDatasetBuilder(reopened, dataset_config)
        warm_time, _ = _timed(lambda: builder.warm())
        graph = builder.graph
        batch = [address for address, _ in reopened.labels.items()
                 if graph.has_node(address)][:score_batch]
        assert batch, "no scoreable labelled addresses in the generated ledger"
        score_time, _ = _timed(
            lambda: [builder.build_sample(a) for a in batch])

        # Follow the chain: new blocks land through the columnar path.
        append_time, _ = _timed(
            lambda: _append_follow_up_txs(reopened, append_txs, batch, seed + 1))
        inc_sync_time, inc_manifest = _timed(lambda: reopened.sync())
        assert inc_manifest["num_rows"] == reopened.num_transactions
        refresh_time, touched = _timed(lambda: builder.refresh())
        targets = [a for a in batch if a in set(touched)]
        assert targets, "the appended traffic must touch scored addresses"
        rescore_time, fresh_samples = _timed(
            lambda: [builder.build_sample(a) for a in targets])

        # Cold reference: a brand-new pipeline over the grown ledger.
        def cold_rebuild():
            cold_builder = SubgraphDatasetBuilder(reopened, dataset_config)
            cold_builder.warm()
            return [cold_builder.build_sample(a) for a in targets]

        cold_time, cold_samples = _timed(cold_rebuild)
        for fresh, cold in zip(fresh_samples, cold_samples):
            assert fresh.graph.nodes == cold.graph.nodes, \
                "follow-chain parity violated on subgraph nodes"
            assert np.array_equal(fresh.graph.edge_feature_matrix(),
                                  cold.graph.edge_feature_matrix()), \
                "follow-chain parity violated on subgraph edges"
            assert np.array_equal(fresh.node_features, cold.node_features), \
                "follow-chain parity violated on node features"

    incremental = append_time + inc_sync_time + refresh_time + rescore_time
    return {
        "base_transactions": ledger.num_transactions - append_txs,
        "append_transactions": append_txs,
        "generate_seconds": generate_time,
        "initial_sync_seconds": sync_time,
        "open_seconds": open_time,
        "restart_speedup_vs_regenerate": generate_time / open_time,
        "warm_seconds": warm_time,
        "score_batch": len(batch),
        "score_seconds": score_time,
        "append_seconds": append_time,
        "incremental_sync_seconds": inc_sync_time,
        "refresh_seconds": refresh_time,
        "rescored_addresses": len(targets),
        "rescore_seconds": rescore_time,
        "append_rescore_ms": incremental * 1e3,
        "cold_rebuild_seconds": cold_time,
        "rescore_speedup_vs_cold": cold_time / (refresh_time + rescore_time),
    }


def run(scales=DEFAULT_SCALES, output: Path | None = DEFAULT_OUTPUT,
        skip_object_above: int | None = None, seed: int = 7,
        follow_chain: bool = True, base_txs: int = 100_000,
        append_txs: int = 10_000) -> dict:
    results = {"config": {"seed": seed, "scales": list(scales),
                          "skip_object_above": skip_object_above},
               "scales": []}
    for target in scales:
        skip_object = skip_object_above is not None and target > skip_object_above
        record = bench_scale(target, seed=seed, skip_object=skip_object)
        results["scales"].append(record)
        line = (f"[{record['num_transactions']:>8} txs] "
                f"synthesize {record['synthesize_seconds']*1e3:8.1f} ms | "
                f"assemble {record['assemble_seconds']['columnar']*1e3:8.1f} ms")
        if "speedup" in record["assemble_seconds"]:
            line += (f" ({record['assemble_seconds']['speedup']:5.1f}x) | "
                     f"graph {record['graph_seconds']['columnar']*1e3:8.1f} ms "
                     f"({record['graph_seconds']['speedup']:5.1f}x) | "
                     f"ledger+graph {record['ledger_graph_speedup']:5.1f}x")
        else:
            line += (f" | graph {record['graph_seconds']['columnar']*1e3:8.1f} ms "
                     f"(object path skipped)")
        print(line)
    if follow_chain:
        record = bench_follow_chain(base_txs=base_txs, append_txs=append_txs,
                                    seed=seed)
        results["follow_chain"] = record
        print(f"[follow-chain] open {record['open_seconds']*1e3:8.1f} ms "
              f"({record['restart_speedup_vs_regenerate']:6.1f}x vs regenerate) | "
              f"append+rescore {record['append_rescore_ms']:8.1f} ms "
              f"({record['rescore_speedup_vs_cold']:5.1f}x vs cold rebuild, "
              f"{record['rescored_addresses']} addresses)")
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", type=int, nargs="+", default=list(DEFAULT_SCALES),
                        help="target transaction counts (default: 10000 100000 1000000)")
    parser.add_argument("--skip-scales", action="store_true",
                        help="run only the follow-the-chain demo")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="path of the JSON results file")
    parser.add_argument("--skip-object-above", type=int, default=None,
                        help="skip the per-object reference paths above this tx count")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless every compared scale hits this "
                             "ledger-build+graph-build speedup")
    parser.add_argument("--skip-follow-chain", action="store_true",
                        help="skip the durable-backend follow-the-chain demo")
    parser.add_argument("--base-txs", type=int, default=100_000,
                        help="persisted ledger size for the follow-chain demo")
    parser.add_argument("--append-txs", type=int, default=10_000,
                        help="transactions appended after the restart")
    parser.add_argument("--min-open-speedup", type=float, default=None,
                        help="fail unless restart-from-disk beats regenerating "
                             "the ledger by this factor")
    parser.add_argument("--max-append-rescore-ms", type=float, default=None,
                        help="fail if append + incremental sync + refresh + "
                             "rescore exceeds this latency")
    args = parser.parse_args()
    results = run(scales=() if args.skip_scales else tuple(args.scales),
                  output=args.output,
                  skip_object_above=args.skip_object_above,
                  follow_chain=not args.skip_follow_chain,
                  base_txs=args.base_txs, append_txs=args.append_txs)
    if args.min_speedup is not None:
        for record in results["scales"]:
            if "ledger_graph_speedup" not in record:
                continue
            got = record["ledger_graph_speedup"]
            assert got >= args.min_speedup, (
                f"ledger+graph speedup {got:.1f}x below {args.min_speedup}x "
                f"at {record['num_transactions']} txs")
    chain = results.get("follow_chain")
    if args.min_open_speedup is not None:
        assert chain is not None, "--min-open-speedup needs the follow-chain demo"
        got = chain["restart_speedup_vs_regenerate"]
        assert got >= args.min_open_speedup, (
            f"restart-from-disk speedup {got:.1f}x below {args.min_open_speedup}x")
    if args.max_append_rescore_ms is not None:
        assert chain is not None, "--max-append-rescore-ms needs the follow-chain demo"
        got = chain["append_rescore_ms"]
        assert got <= args.max_append_rescore_ms, (
            f"append+rescore latency {got:.1f} ms above "
            f"{args.max_append_rescore_ms:.1f} ms")


if __name__ == "__main__":
    main()
