"""Figure 7: ROC/AUC of the five candidate final classifiers.

The paper compares LightGBM, XGBoost, random forest, AdaBoost and an MLP as the
final classifier over the calibrated probabilities and reports AUC values above
0.95 with LightGBM among the best.  The bench regenerates the AUC per
classifier on the phish/hack task.
"""

import numpy as np

from benchmarks.conftest import BENCH_EPOCHS, record_result
from repro.experiments import classifier_roc_study
from repro.experiments.runner import fast_dbg4eth_config
import pytest

pytestmark = pytest.mark.slow  # full training loop; skip with -m 'not slow'


def run(dataset):
    return classifier_roc_study(dataset, "phish/hack",
                                lambda: fast_dbg4eth_config(epochs=BENCH_EPOCHS), seed=7)


def test_fig7_classifier_roc(benchmark, bench_dataset):
    study = benchmark.pedantic(run, args=(bench_dataset,), rounds=1, iterations=1)

    lines = ["Figure 7 — final-classifier ROC study (phish/hack)",
             f"{'classifier':<16}{'AUC':>8}"]
    for name, entry in sorted(study.items(), key=lambda kv: -kv[1]["auc"]):
        lines.append(f"{name:<16}{entry['auc']:8.4f}")
    record_result("fig7_classifier_roc", "\n".join(lines))

    assert set(study) == {"lightgbm", "xgboost", "random_forest", "adaboost", "mlp"}
    for entry in study.values():
        assert 0.0 <= entry["auc"] <= 1.0
        assert np.all(np.diff(entry["fpr"]) >= 0)
    # Paper shape: LightGBM is competitive with the best alternative final
    # classifier.  No absolute AUC floor is asserted because the held-out split
    # at bench scale holds fewer than ten graphs (see EXPERIMENTS.md).
    best = max(entry["auc"] for entry in study.values())
    assert study["lightgbm"]["auc"] >= best - 0.3
