"""Perf harness: batched end-to-end scoring through the `repro.api` facade.

Measures the serving path — "addresses in, probabilities out" — of
:class:`repro.api.DeAnonymizer` against the naive per-(address, head) loop it
replaces:

* ``batched``  — one ``score(addresses)`` call: every address is ego-sampled
  and featurized exactly once, and all category heads share the resulting
  subgraphs (and their memoized CSR normalisations);
* ``naive``    — for every head, re-sample and re-featurize every address and
  predict one sample at a time (cold caches, the pre-facade pattern).

On top of the sequential comparison, the harness exercises the concurrent
serving tier:

* ``latency``    — per-request wall times of warm single-address ``score()``
  calls, reported as p50/p95/mean/max percentiles;
* ``concurrent`` — a :class:`repro.api.ParallelScorer` worker-count sweep
  (default 1/2/4) in thread or process mode, cold sample cache per run;
* ``service``    — N asyncio callers pushed through the
  :class:`repro.api.ScoringService` micro-batcher, recording how many batched
  passes served them and the per-caller latency percentiles.

Every path is asserted to produce bit-identical probabilities before timings
are recorded.  Results are written to ``BENCH_api.json``.  Note that the
worker sweep measures honestly: on a single-core host the parallel rows will
hover around 1x — the ``--min-concurrent-speedup`` floor is opt-in and meant
for multi-core runners.

Run::

    PYTHONPATH=src python benchmarks/perf_api.py                 # default scale
    PYTHONPATH=src python benchmarks/perf_api.py --scale 0.15 --output /tmp/b.json
    PYTHONPATH=src python benchmarks/perf_api.py --workers 1,2,4 \
        --concurrent-mode process --min-concurrent-speedup 2.0
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.api import DeAnonymizer, ParallelScorer, ScoringService
from repro.chain import LedgerConfig, generate_ledger
from repro.core import CalibrationConfig, DBG4ETHConfig, GSGConfig, LDGConfig
from repro.data import DatasetConfig

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_api.json"
DEFAULT_CATEGORIES = ("exchange", "mining", "phish/hack")


def serving_config(epochs: int) -> DBG4ETHConfig:
    """A small but fully featured head configuration for the benchmark."""
    return DBG4ETHConfig(
        gsg=GSGConfig(hidden_dim=16, epochs=epochs, contrastive_batch=6),
        ldg=LDGConfig(hidden_dim=16, epochs=epochs, num_slices=4, first_pool_clusters=6),
        calibration=CalibrationConfig(),
    )


def naive_score(deanon: DeAnonymizer, addresses: list[str]) -> dict[str, dict[str, float]]:
    """The pre-facade serving loop: sample + featurize per (address, head)."""
    results: dict[str, dict[str, float]] = {address: {} for address in addresses}
    for category in deanon.categories:
        head = deanon.head(category)
        for address in addresses:
            sample = deanon.builder.build_sample(address)   # fresh: cold CSR caches
            results[address][category] = float(head.predict_proba([sample])[0])
    return results


def percentile_summary(latencies: list[float]) -> dict:
    """p50/p95/mean/max of a latency sample, in milliseconds."""
    arr = np.asarray(latencies, dtype=np.float64) * 1e3
    return {
        "count": int(len(arr)),
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "mean_ms": float(arr.mean()),
        "max_ms": float(arr.max()),
    }


def assert_parity(expected: dict, got: dict, label: str) -> None:
    """Bit-for-bit equality of two {address: {category: p}} result dicts."""
    assert set(expected) == set(got), f"{label}: address sets differ"
    for address, per_category in expected.items():
        for category, probability in per_category.items():
            assert got[address][category] == probability, (
                f"{label}: parity violated for {address} / {category}: "
                f"{got[address][category]} != {probability}")


def bench_concurrent(deanon: DeAnonymizer, addresses: list[str],
                     expected: dict, workers: list[int], mode: str,
                     reps: int) -> dict:
    """Worker-count sweep of the ParallelScorer, parity-checked per count."""
    sweep = []
    for count in workers:
        with ParallelScorer(deanon, max_workers=count, mode=mode) as scorer:
            if mode == "process":
                scorer.warm()                    # pool spin-up out of the timing
            deanon.clear_sample_cache()
            assert_parity(expected, scorer.score(addresses),
                          f"concurrent[{mode} x{count}]")
            best = float("inf")
            for _ in range(reps):
                deanon.clear_sample_cache()
                t0 = time.perf_counter()
                scorer.score(addresses)
                best = min(best, time.perf_counter() - t0)
        sweep.append({"workers": count, "seconds": best,
                      "addresses_per_second": len(addresses) / best})
    baseline = sweep[0]["seconds"]
    for row in sweep:
        row["speedup_vs_single_worker"] = baseline / row["seconds"]
    return {"mode": mode, "sweep": sweep}


def bench_service(deanon: DeAnonymizer, addresses: list[str], expected: dict,
                  batch_window: float = 0.01) -> dict:
    """N concurrent asyncio callers through the micro-batcher, one address each."""
    latencies: list[float] = []
    before_batches = deanon.metrics.counter("service.batches")

    async def call(service: ScoringService, address: str) -> dict[str, float]:
        t0 = time.perf_counter()
        result = await service.score(address)
        latencies.append(time.perf_counter() - t0)
        return result

    async def main():
        async with ScoringService(deanon, batch_window=batch_window,
                                  max_batch=len(addresses)) as service:
            t0 = time.perf_counter()
            results = await asyncio.gather(
                *(call(service, address) for address in addresses))
            return time.perf_counter() - t0, results

    total_seconds, results = asyncio.run(main())
    for address, result in zip(addresses, results):
        for category, probability in expected[address].items():
            assert result[category] == probability, (
                f"service: parity violated for {address} / {category}")
    batches = deanon.metrics.counter("service.batches") - before_batches
    assert batches < len(addresses), (
        f"micro-batcher did not coalesce: {batches} batches for "
        f"{len(addresses)} concurrent callers")
    return {
        "callers": len(addresses),
        "batch_window_ms": batch_window * 1e3,
        "total_seconds": total_seconds,
        "batches": batches,
        "requests_per_second": len(addresses) / total_seconds,
        "latency": percentile_summary(latencies),
    }


def run(scale: float = 0.3, num_addresses: int = 30, epochs: int = 4,
        categories=DEFAULT_CATEGORIES, reps: int = 3, seed: int = 7,
        workers: list[int] | None = None, concurrent_mode: str = "thread",
        output: Path | None = DEFAULT_OUTPUT) -> dict:
    config = LedgerConfig().scaled(scale)
    config.seed = seed
    ledger = generate_ledger(config)
    deanon = DeAnonymizer(ledger,
                          dataset_config=DatasetConfig(top_k=40, max_nodes_per_subgraph=40,
                                                       seed=seed),
                          model_config=lambda: serving_config(epochs),
                          seed=seed)

    t0 = time.perf_counter()
    deanon.fit(categories)
    fit_seconds = time.perf_counter() - t0

    # Score addresses drawn from the global graph (mix of labelled and not).
    rng = np.random.default_rng(seed)
    nodes = list(deanon.builder.graph.nodes)
    addresses = [nodes[i] for i in rng.permutation(len(nodes))[:num_addresses]]

    # Pre-build the shared graph/feature structures so every timed path —
    # sequential and concurrent alike — measures serving, not first-build.
    deanon.warm()

    # Parity first: the batched facade path must equal the naive loop bit-for-bit.
    expected = naive_score(deanon, addresses)
    deanon.clear_sample_cache()                  # cold start for the timed runs
    batched = deanon.score(addresses)
    assert_parity(expected, batched, "batched")

    best_naive = float("inf")
    best_batched = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        naive_score(deanon, addresses)
        best_naive = min(best_naive, time.perf_counter() - t0)

        deanon.clear_sample_cache()
        t0 = time.perf_counter()
        deanon.score(addresses)
        best_batched = min(best_batched, time.perf_counter() - t0)

    # Warm single-address latency percentiles (the interactive request shape).
    single_latencies = []
    for address in addresses:
        t0 = time.perf_counter()
        deanon.score([address])
        single_latencies.append(time.perf_counter() - t0)

    concurrent = bench_concurrent(deanon, addresses, expected,
                                  workers or [1, 2, 4], concurrent_mode, reps)
    service = bench_service(deanon, addresses, expected)

    results = {
        "config": {"scale": scale, "num_addresses": num_addresses, "epochs": epochs,
                   "categories": list(categories), "reps": reps, "seed": seed,
                   "num_transactions": ledger.num_transactions,
                   "num_graph_nodes": deanon.builder.graph.num_nodes},
        "fit_seconds": fit_seconds,
        "batched_seconds": best_batched,
        "naive_seconds": best_naive,
        "speedup": best_naive / best_batched,
        "batched_addresses_per_second": num_addresses / best_batched,
        "naive_addresses_per_second": num_addresses / best_naive,
        "latency": {"single_address_warm": percentile_summary(single_latencies)},
        "concurrent": concurrent,
        "service": service,
    }
    print(f"[{num_addresses} addresses x {len(categories)} heads] "
          f"batched {best_batched * 1e3:7.1f} ms ({results['batched_addresses_per_second']:6.1f} addr/s) | "
          f"naive {best_naive * 1e3:7.1f} ms | speedup {results['speedup']:.2f}x")
    lat = results["latency"]["single_address_warm"]
    print(f"single-address warm latency: p50 {lat['p50_ms']:.1f} ms | "
          f"p95 {lat['p95_ms']:.1f} ms")
    for row in concurrent["sweep"]:
        print(f"parallel[{concurrent['mode']} x{row['workers']}]: "
              f"{row['seconds'] * 1e3:7.1f} ms ({row['addresses_per_second']:6.1f} addr/s, "
              f"{row['speedup_vs_single_worker']:.2f}x vs 1 worker)")
    print(f"service: {service['callers']} callers in {service['batches']} batches | "
          f"{service['requests_per_second']:6.1f} req/s | "
          f"p95 {service['latency']['p95_ms']:.1f} ms")
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3,
                        help="ledger scale multiplier (default 0.3)")
    parser.add_argument("--addresses", type=int, default=30,
                        help="batch size of the scoring request (default 30)")
    parser.add_argument("--epochs", type=int, default=4,
                        help="training epochs per head (default 4)")
    parser.add_argument("--reps", type=int, default=3,
                        help="best-of repetitions per measurement")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="path of the JSON results file")
    parser.add_argument("--workers", type=str, default="1,2,4",
                        help="comma-separated ParallelScorer worker counts "
                             "to sweep (default 1,2,4)")
    parser.add_argument("--concurrent-mode", choices=("thread", "process"),
                        default="thread",
                        help="ParallelScorer execution mode for the sweep")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless batched scoring beats the naive loop "
                             "by this factor")
    parser.add_argument("--min-concurrent-speedup", type=float, default=None,
                        help="fail unless the largest worker count beats the "
                             "single-worker run by this factor (opt-in: only "
                             "meaningful on multi-core hosts)")
    parser.add_argument("--min-concurrent-throughput", type=float, default=None,
                        help="fail unless every concurrent sweep row reaches "
                             "this many addresses/second")
    args = parser.parse_args()
    workers = [int(w) for w in args.workers.split(",") if w.strip()]
    results = run(scale=args.scale, num_addresses=args.addresses, epochs=args.epochs,
                  reps=args.reps, workers=workers,
                  concurrent_mode=args.concurrent_mode, output=args.output)
    if args.min_speedup is not None:
        assert results["speedup"] >= args.min_speedup, (
            f"batched scoring speedup {results['speedup']:.2f}x below "
            f"{args.min_speedup}x")
    sweep = results["concurrent"]["sweep"]
    if args.min_concurrent_speedup is not None:
        best = max(row["speedup_vs_single_worker"] for row in sweep)
        assert best >= args.min_concurrent_speedup, (
            f"concurrent speedup {best:.2f}x below {args.min_concurrent_speedup}x")
    if args.min_concurrent_throughput is not None:
        slowest = min(row["addresses_per_second"] for row in sweep)
        assert slowest >= args.min_concurrent_throughput, (
            f"concurrent throughput {slowest:.1f} addr/s below "
            f"{args.min_concurrent_throughput}")


if __name__ == "__main__":
    main()
