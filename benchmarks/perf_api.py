"""Perf harness: batched end-to-end scoring through the `repro.api` facade.

Measures the serving path — "addresses in, probabilities out" — of
:class:`repro.api.DeAnonymizer` against the naive per-(address, head) loop it
replaces:

* ``batched``  — one ``score(addresses)`` call: every address is ego-sampled
  and featurized exactly once, and all category heads share the resulting
  subgraphs (and their memoized CSR normalisations);
* ``naive``    — for every head, re-sample and re-featurize every address and
  predict one sample at a time (cold caches, the pre-facade pattern).

Both paths are asserted to produce bit-identical probabilities before timings
are recorded.  Results (wall times, speedup, addresses/sec throughput) are
written to ``BENCH_api.json``.

Run::

    PYTHONPATH=src python benchmarks/perf_api.py                 # default scale
    PYTHONPATH=src python benchmarks/perf_api.py --scale 0.15 --output /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.api import DeAnonymizer
from repro.chain import LedgerConfig, generate_ledger
from repro.core import CalibrationConfig, DBG4ETHConfig, GSGConfig, LDGConfig
from repro.data import DatasetConfig

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_api.json"
DEFAULT_CATEGORIES = ("exchange", "mining", "phish/hack")


def serving_config(epochs: int) -> DBG4ETHConfig:
    """A small but fully featured head configuration for the benchmark."""
    return DBG4ETHConfig(
        gsg=GSGConfig(hidden_dim=16, epochs=epochs, contrastive_batch=6),
        ldg=LDGConfig(hidden_dim=16, epochs=epochs, num_slices=4, first_pool_clusters=6),
        calibration=CalibrationConfig(),
    )


def naive_score(deanon: DeAnonymizer, addresses: list[str]) -> dict[str, dict[str, float]]:
    """The pre-facade serving loop: sample + featurize per (address, head)."""
    results: dict[str, dict[str, float]] = {address: {} for address in addresses}
    for category in deanon.categories:
        head = deanon.head(category)
        for address in addresses:
            sample = deanon.builder.build_sample(address)   # fresh: cold CSR caches
            results[address][category] = float(head.predict_proba([sample])[0])
    return results


def run(scale: float = 0.3, num_addresses: int = 30, epochs: int = 4,
        categories=DEFAULT_CATEGORIES, reps: int = 3, seed: int = 7,
        output: Path | None = DEFAULT_OUTPUT) -> dict:
    config = LedgerConfig().scaled(scale)
    config.seed = seed
    ledger = generate_ledger(config)
    deanon = DeAnonymizer(ledger,
                          dataset_config=DatasetConfig(top_k=40, max_nodes_per_subgraph=40,
                                                       seed=seed),
                          model_config=lambda: serving_config(epochs),
                          seed=seed)

    t0 = time.perf_counter()
    deanon.fit(categories)
    fit_seconds = time.perf_counter() - t0

    # Score addresses drawn from the global graph (mix of labelled and not).
    rng = np.random.default_rng(seed)
    nodes = list(deanon.builder.graph.nodes)
    addresses = [nodes[i] for i in rng.permutation(len(nodes))[:num_addresses]]

    # Parity first: the batched facade path must equal the naive loop bit-for-bit.
    expected = naive_score(deanon, addresses)
    deanon.clear_sample_cache()                  # cold start for the timed runs
    batched = deanon.score(addresses)
    for address in addresses:
        for category, probability in expected[address].items():
            assert batched[address][category] == probability, (
                f"parity violated for {address} / {category}: "
                f"{batched[address][category]} != {probability}")

    best_naive = float("inf")
    best_batched = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        naive_score(deanon, addresses)
        best_naive = min(best_naive, time.perf_counter() - t0)

        deanon.clear_sample_cache()
        t0 = time.perf_counter()
        deanon.score(addresses)
        best_batched = min(best_batched, time.perf_counter() - t0)

    results = {
        "config": {"scale": scale, "num_addresses": num_addresses, "epochs": epochs,
                   "categories": list(categories), "reps": reps, "seed": seed,
                   "num_transactions": ledger.num_transactions,
                   "num_graph_nodes": deanon.builder.graph.num_nodes},
        "fit_seconds": fit_seconds,
        "batched_seconds": best_batched,
        "naive_seconds": best_naive,
        "speedup": best_naive / best_batched,
        "batched_addresses_per_second": num_addresses / best_batched,
        "naive_addresses_per_second": num_addresses / best_naive,
    }
    print(f"[{num_addresses} addresses x {len(categories)} heads] "
          f"batched {best_batched * 1e3:7.1f} ms ({results['batched_addresses_per_second']:6.1f} addr/s) | "
          f"naive {best_naive * 1e3:7.1f} ms | speedup {results['speedup']:.2f}x")
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3,
                        help="ledger scale multiplier (default 0.3)")
    parser.add_argument("--addresses", type=int, default=30,
                        help="batch size of the scoring request (default 30)")
    parser.add_argument("--epochs", type=int, default=4,
                        help="training epochs per head (default 4)")
    parser.add_argument("--reps", type=int, default=3,
                        help="best-of repetitions per measurement")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="path of the JSON results file")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless batched scoring beats the naive loop "
                             "by this factor")
    args = parser.parse_args()
    results = run(scale=args.scale, num_addresses=args.addresses, epochs=args.epochs,
                  reps=args.reps, output=args.output)
    if args.min_speedup is not None:
        assert results["speedup"] >= args.min_speedup, (
            f"batched scoring speedup {results['speedup']:.2f}x below "
            f"{args.min_speedup}x")


if __name__ == "__main__":
    main()
