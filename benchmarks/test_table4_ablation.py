"""Table IV: module ablation study.

Regenerates the F1-scores of DBG4ETH with individual modules removed (single
branches, calibration variants, final classifier).  The expected shape is that
the full model is at least as good on average as the single-branch ablations.
"""

import numpy as np

from benchmarks.conftest import BENCH_EPOCHS, record_result
from repro.experiments import format_table, run_ablation
from repro.experiments.runner import fast_dbg4eth_config
import pytest

pytestmark = pytest.mark.slow  # full training loop; skip with -m 'not slow'

CATEGORIES = ["exchange", "ico-wallet", "mining", "phish/hack"]


def run(dataset):
    return run_ablation(dataset, CATEGORIES,
                        base_config=lambda: fast_dbg4eth_config(epochs=BENCH_EPOCHS),
                        seed=7)


def test_table4_ablation(benchmark, bench_dataset):
    results = benchmark.pedantic(run, args=(bench_dataset,), rounds=1, iterations=1)
    record_result("table4_ablation",
                  format_table(results, title="Table IV — ablation F1 per category"))

    full = np.mean(list(results["DBG4ETH"].values()))
    without_gsg = np.mean(list(results["w/o GSG"].values()))
    without_ldg = np.mean(list(results["w/o LDG"].values()))
    # Paper shape: combining both graphs is not worse than either branch alone
    # (asserted with a tolerance that accounts for the tiny held-out splits).
    assert full >= min(without_gsg, without_ldg) - 0.15
    assert full >= 0.4
    # Every ablation variant still produces usable classifiers.
    for variant, per_category in results.items():
        assert all(0.0 <= f1 <= 1.0 for f1 in per_category.values()), variant
