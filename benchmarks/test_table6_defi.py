"""Table VI: account classification results on the novel *DeFi* category."""

import numpy as np

from benchmarks.conftest import BENCH_EPOCHS, record_result
from repro.baselines import (
    BERT4ETHClassifier,
    DeepWalkClassifier,
    EthidentClassifier,
    GCNClassifier,
    GINClassifier,
    GraphSAGEClassifier,
    I2BGNNClassifier,
    TEGDetectorClassifier,
)
from repro.experiments import format_table, run_baseline_comparison
from repro.experiments.runner import fast_dbg4eth_config
import pytest

pytestmark = pytest.mark.slow  # full training loop; skip with -m 'not slow'


def bench_baselines():
    return {
        "DeepWalk": DeepWalkClassifier(dim=8, walk_length=8, walks_per_node=1, seed=0),
        "GCN": GCNClassifier(hidden_dim=16, epochs=BENCH_EPOCHS, seed=0),
        "GIN": GINClassifier(hidden_dim=16, epochs=BENCH_EPOCHS, seed=0),
        "GraphSAGE": GraphSAGEClassifier(hidden_dim=16, epochs=BENCH_EPOCHS, seed=0),
        "I2BGNN": I2BGNNClassifier(hidden_dim=16, epochs=BENCH_EPOCHS, seed=0),
        "Ethident": EthidentClassifier(hidden_dim=16, epochs=BENCH_EPOCHS, seed=0),
        "TEGDetector": TEGDetectorClassifier(hidden_dim=16, epochs=BENCH_EPOCHS, seed=0),
        "BERT4ETH": BERT4ETHClassifier(hidden_dim=16, epochs=BENCH_EPOCHS, seed=0),
    }


def run(dataset):
    return run_baseline_comparison(dataset, ["defi"], baselines=bench_baselines(),
                                   include_dbg4eth=True,
                                   dbg4eth_config=fast_dbg4eth_config(epochs=BENCH_EPOCHS),
                                   seed=7)


def test_table6_defi(benchmark, bench_dataset):
    results = benchmark.pedantic(run, args=(bench_dataset,), rounds=1, iterations=1)
    record_result("table6_defi",
                  format_table(results, title="Table VI — DeFi accounts (F1)", metric="f1"))

    dbg_f1 = results["DBG4ETH"]["defi"]["f1"]
    others = [per_cat["defi"]["f1"] for name, per_cat in results.items() if name != "DBG4ETH"]
    assert dbg_f1 >= np.median(others) - 0.15
    assert dbg_f1 >= 0.3
