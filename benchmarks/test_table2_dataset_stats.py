"""Table II: dataset statistics per account category.

Regenerates the per-category sample counts and average subgraph sizes that the
paper reports for its Ethereum label crawl, on the synthetic ledger.
"""

from benchmarks.conftest import record_result
from repro.chain import AccountCategory


def build_statistics(dataset):
    return dataset.statistics()


def test_table2_dataset_statistics(benchmark, bench_dataset):
    stats = benchmark.pedantic(build_statistics, args=(bench_dataset,), rounds=1, iterations=1)

    lines = ["Table II — dataset statistics (synthetic ledger)",
             f"{'category':<14}{'positives':>10}{'graphs':>10}{'avg nodes':>12}{'avg edges':>12}"]
    for category, row in sorted(stats.items()):
        lines.append(f"{category:<14}{row['num_positive']:>10.0f}{row['num_graphs']:>10.0f}"
                     f"{row['avg_nodes']:>12.1f}{row['avg_edges']:>12.1f}")
    record_result("table2_dataset_stats", "\n".join(lines))

    assert set(stats) == {c.value for c in AccountCategory}
    for row in stats.values():
        assert row["num_positive"] >= 2
        assert row["avg_nodes"] > 1.0
        assert row["avg_edges"] > 0.0
    # Phish/hack is the dominant category, as in the paper (1991 of 2643 labels).
    assert stats["phish/hack"]["num_positive"] == max(r["num_positive"] for r in stats.values())
