"""Figure 6: adaptive calibration weights per method, branch and account type.

The paper observes that (a) the six methods receive similar weights on the GSG
branch, (b) weights differ much more on the LDG branch, and (c) non-parametric
methods collectively receive at least as much weight as parametric ones.  The
bench regenerates the weight table and checks the aggregate shape (c) plus
basic normalisation.
"""

import numpy as np

from benchmarks.conftest import BENCH_EPOCHS, record_result
from repro.calibration import NONPARAMETRIC_METHODS, PARAMETRIC_METHODS
from repro.experiments import calibration_weight_table
from repro.experiments.runner import fast_dbg4eth_config
import pytest

pytestmark = pytest.mark.slow  # full training loop; skip with -m 'not slow'

CATEGORIES = ["exchange", "ico-wallet", "mining", "phish/hack"]


def run(dataset):
    return calibration_weight_table(
        dataset, CATEGORIES, lambda: fast_dbg4eth_config(epochs=BENCH_EPOCHS), seed=7)


def test_fig6_calibration_weights(benchmark, bench_dataset):
    weights = benchmark.pedantic(run, args=(bench_dataset,), rounds=1, iterations=1)

    methods = PARAMETRIC_METHODS + NONPARAMETRIC_METHODS
    lines = ["Figure 6 — adaptive calibration weights (per category and branch)"]
    for category, branches in weights.items():
        for branch, method_weights in branches.items():
            row = "  ".join(f"{m}={method_weights[m]:+.2f}" for m in methods)
            lines.append(f"{category:<12} {branch.upper():<4} {row}")
    record_result("fig6_calibration_weights", "\n".join(lines))

    nonparam_share = []
    for category, branches in weights.items():
        for branch, method_weights in branches.items():
            assert set(method_weights) == set(methods)
            assert abs(sum(method_weights.values()) - 1.0) < 1e-9
            nonparam_share.append(sum(method_weights[m] for m in NONPARAMETRIC_METHODS))
    # Paper shape: non-parametric calibration carries the larger share on the
    # typical branch.  Median, not mean: the least-squares weight fit can blow
    # up (large +/- weights that cancel) on a branch whose calibrators are
    # nearly collinear, and one such branch should not dominate the aggregate.
    assert np.median(nonparam_share) >= 0.5
