"""Perf harness: columnar-edge-store TxGraph vs dict-backed and seed references.

Measures, at several transaction-count scales:

* ``build``      — full transaction-graph construction from the ledger: the
  columnar ``TxGraph`` (parallel numpy edge columns, lazy ``Edge`` views)
  against ``DictTxGraph``, a faithful re-implementation of the previous
  dict-backed edge store (one merged ``Edge`` object plus three index-dict
  writes per edge),
* ``sample``     — 2-hop top-K ego-subgraph extraction (Eq. 2),
* ``extract``    — batched deep-feature extraction (Table I),
* ``centrality`` — eigenvector + PageRank power iteration,

the latter three against faithful re-implementations of the seed code paths
(``LegacyTxGraph`` re-derives ``neighbors``/``degree``/``out_edges``/
``in_edges``/``subgraph`` from a full edge-dict scan; the legacy extract is a
per-address loop; the legacy centralities run dense ``(n, n)`` matrices).

Bit parity between the columnar and dict-backed graphs — node order, edge
order, amounts, counts and the iterative count-weighted timestamp means — is
asserted before any timing is recorded.  Results, including speedups, are
written to ``BENCH_graph.json``.  Scales above ``--build-only-above`` run the
build comparison only (the legacy O(V*E) sampler would take minutes there).

Run::

    PYTHONPATH=src python benchmarks/perf_graph.py              # 1k/10k/100k/1M
    PYTHONPATH=src python benchmarks/perf_graph.py --scales 20000 --min-build-speedup 2
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Hashable

import numpy as np

from repro.chain import LedgerConfig, generate_ledger
from repro.data.features import DeepFeatureExtractor
from repro.data.pipeline import build_transaction_graph
from repro.graph.centrality import eigenvector_centrality, pagerank_centrality
from repro.graph.sampling import ego_subgraph
from repro.graph.txgraph import Edge, TxGraph

#: Transactions generated per unit of LedgerConfig scale with seed 7
#: (measured on the nine-scenario engine at scale 100).
_TXS_PER_UNIT_SCALE = 8316.0

DEFAULT_SCALES = (1_000, 10_000, 100_000, 1_000_000)
DEFAULT_BUILD_ONLY_ABOVE = 150_000
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_graph.json"


class DictTxGraph:
    """The previous (PR 4) dict-backed edge store, kept as the build reference.

    Every merged edge is a frozen ``Edge`` object stored under its ``(src,
    dst)`` key in a global dict plus two per-node adjacency dicts, with a
    fourth dict recording global insertion rank.  ``add_edges_bulk`` performs
    the same vectorised merge as the columnar store but must still materialise
    one ``Edge`` and three dict writes per merged edge — the per-edge cost the
    columnar refactor removed.
    """

    def __init__(self):
        self._nodes: dict[Hashable, int] = {}
        self._node_order: list[Hashable] = []
        self._edges: dict[tuple[Hashable, Hashable], Edge] = {}
        self._node_attrs: dict[Hashable, dict] = {}
        self._out: dict[Hashable, dict[Hashable, Edge]] = {}
        self._in: dict[Hashable, dict[Hashable, Edge]] = {}
        self._edge_seq: dict[tuple[Hashable, Hashable], int] = {}

    # ------------------------------------------------------------------ nodes
    def add_node(self, node: Hashable, **attrs) -> None:
        if node not in self._nodes:
            self._nodes[node] = len(self._node_order)
            self._node_order.append(node)
            self._node_attrs[node] = {}
            self._out[node] = {}
            self._in[node] = {}
        if attrs:
            self._node_attrs[node].update(attrs)

    def has_node(self, node: Hashable) -> bool:
        return node in self._nodes

    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes

    def node_index(self, node: Hashable) -> int:
        return self._nodes[node]

    def set_node_attr(self, node: Hashable, key: str, value) -> None:
        self._node_attrs[node][key] = value

    @property
    def nodes(self) -> list[Hashable]:
        return list(self._node_order)

    @property
    def num_nodes(self) -> int:
        return len(self._node_order)

    # ------------------------------------------------------------------ edges
    def add_edge(self, src: Hashable, dst: Hashable, amount: float = 0.0,
                 count: int = 1, timestamp: float = 0.0) -> None:
        self.add_node(src)
        self.add_node(dst)
        key = (src, dst)
        existing = self._edges.get(key)
        if existing is None:
            edge = Edge(src, dst, amount, count, timestamp)
        else:
            total = existing.count + count
            if total > 0:
                mean_ts = (existing.timestamp * existing.count + timestamp * count) / total
            else:
                mean_ts = existing.timestamp
            edge = Edge(src, dst, existing.amount + amount, total, mean_ts)
        if existing is None:
            self._edge_seq[key] = len(self._edges)
        self._edges[key] = edge
        self._out[src][dst] = edge
        self._in[dst][src] = edge

    def add_edges_bulk(self, srcs, dsts, amounts=None, counts=None,
                       timestamps=None, node_keys: list | None = None) -> None:
        """The PR 4 vectorised merge, ending in the per-edge object/dict loop."""
        srcs = np.asarray(srcs)
        n = len(srcs)
        if n == 0:
            return
        dsts = np.asarray(dsts)
        amounts = (np.zeros(n) if amounts is None
                   else np.ascontiguousarray(amounts, dtype=np.float64))
        counts = (np.ones(n, dtype=np.int64) if counts is None
                  else np.ascontiguousarray(counts, dtype=np.int64))
        timestamps = (np.zeros(n) if timestamps is None
                      else np.ascontiguousarray(timestamps, dtype=np.float64))
        if node_keys is None:
            for i in range(n):
                self.add_edge(srcs[i], dsts[i], float(amounts[i]),
                              int(counts[i]), float(timestamps[i]))
            return
        src_codes = np.ascontiguousarray(srcs, dtype=np.int64)
        dst_codes = np.ascontiguousarray(dsts, dtype=np.int64)

        interleaved_codes = np.empty(2 * n, dtype=np.int64)
        interleaved_codes[0::2] = src_codes
        interleaved_codes[1::2] = dst_codes
        _uniq_codes, first_pos = np.unique(interleaved_codes, return_index=True)
        for pos in np.sort(first_pos).tolist():
            node = node_keys[interleaved_codes[pos]]
            if node not in self._nodes:
                self._nodes[node] = len(self._node_order)
                self._node_order.append(node)
                self._node_attrs[node] = {}
                self._out[node] = {}
                self._in[node] = {}

        num_keys = len(node_keys)
        pair_keys = src_codes * np.int64(num_keys) + dst_codes
        uniq_pairs, pair_first, pair_inverse = np.unique(
            pair_keys, return_index=True, return_inverse=True)
        if self._edges:
            for i in range(n):
                self.add_edge(node_keys[src_codes[i]], node_keys[dst_codes[i]],
                              float(amounts[i]), int(counts[i]), float(timestamps[i]))
            return

        pair_appearance = np.argsort(pair_first, kind="stable")
        edge_rank = np.empty(len(uniq_pairs), dtype=np.int64)
        edge_rank[pair_appearance] = np.arange(len(uniq_pairs))
        groups = edge_rank[pair_inverse]
        num_edges_new = len(uniq_pairs)
        order = np.argsort(groups, kind="stable")
        sizes = np.bincount(groups, minlength=num_edges_new)
        starts = np.zeros(num_edges_new, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        edge_amounts = np.bincount(groups, weights=amounts, minlength=num_edges_new)
        edge_counts = np.bincount(groups, weights=counts.astype(np.float64),
                                  minlength=num_edges_new).astype(np.int64)
        single = sizes == 1
        if single.any():
            edge_amounts[single] = amounts[order[starts[single]]]
        ts_acc = np.zeros(num_edges_new)
        cnt_acc = np.zeros(num_edges_new, dtype=np.int64)
        k = 0
        active = np.arange(num_edges_new)
        while len(active):
            rows = order[starts[active] + k]
            t_k = timestamps[rows]
            c_k = counts[rows]
            if k == 0:
                ts_acc[active] = t_k
                cnt_acc[active] = c_k
            else:
                prev_ts = ts_acc[active]
                prev_cnt = cnt_acc[active]
                total = prev_cnt + c_k
                positive = total > 0
                merged = prev_ts.copy()
                merged[positive] = ((prev_ts[positive] * prev_cnt[positive]
                                     + t_k[positive] * c_k[positive])
                                    / total[positive])
                ts_acc[active] = merged
                cnt_acc[active] = total
            k += 1
            active = active[sizes[active] > k]

        src_nodes = [node_keys[c] for c in (uniq_pairs // num_keys)[pair_appearance].tolist()]
        dst_nodes = [node_keys[c] for c in (uniq_pairs % num_keys)[pair_appearance].tolist()]
        edges = self._edges
        edge_seq = self._edge_seq
        out_index = self._out
        in_index = self._in
        seq = len(edges)
        for src, dst, amount, count, ts in zip(
                src_nodes, dst_nodes, edge_amounts.tolist(),
                edge_counts.tolist(), ts_acc.tolist()):
            edge = Edge(src, dst, amount, count, ts)
            key = (src, dst)
            edge_seq[key] = seq
            seq += 1
            edges[key] = edge
            out_index[src][dst] = edge
            in_index[dst][src] = edge

    @property
    def edges(self) -> list[Edge]:
        return list(self._edges.values())

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def edge_feature_matrix(self) -> np.ndarray:
        if not self._edges:
            return np.zeros((0, 2))
        return np.array([[e.amount, float(e.count)] for e in self._edges.values()])

    def out_edges(self, node: Hashable):
        yield from self._out.get(node, {}).values()

    def in_edges(self, node: Hashable):
        yield from self._in.get(node, {}).values()

    def neighbors(self, node: Hashable) -> set[Hashable]:
        return set(self._out.get(node, ())) | set(self._in.get(node, ()))

    def degree(self, node: Hashable) -> int:
        out_nbrs = self._out.get(node)
        in_nbrs = self._in.get(node)
        if out_nbrs is None and in_nbrs is None:
            return 0
        loop = 1 if out_nbrs and node in out_nbrs else 0
        return len(out_nbrs or ()) + len(in_nbrs or ()) - loop

    def adjacency_matrix(self, weighted: bool = False, symmetric: bool = False) -> np.ndarray:
        n = self.num_nodes
        adj = np.zeros((n, n), dtype=np.float64)
        nodes = self._nodes
        for (src, dst), edge in self._edges.items():
            adj[nodes[src], nodes[dst]] = edge.amount if weighted else 1.0
        if symmetric:
            adj = np.maximum(adj, adj.T)
        return adj

    def subgraph(self, nodes):
        keep = {node for node in nodes if node in self._nodes}
        sub = type(self)()
        node_index = self._nodes
        for i, node in enumerate(sorted(keep, key=node_index.__getitem__)):
            sub._nodes[node] = i
            sub._node_order.append(node)
            sub._node_attrs[node] = dict(self._node_attrs[node])
            sub._out[node] = {}
            sub._in[node] = {}
        if len(keep) * 4 < len(self._node_order):
            keys = [(src, dst) for src in keep for dst in self._out[src] if dst in keep]
            keys.sort(key=self._edge_seq.__getitem__)
            kept_edges = [(key, self._edges[key]) for key in keys]
        else:
            kept_edges = [(key, edge) for key, edge in self._edges.items()
                          if key[0] in keep and key[1] in keep]
        for seq, (key, edge) in enumerate(kept_edges):
            sub._edges[key] = edge
            sub._edge_seq[key] = seq
            src, dst = key
            sub._out[src][dst] = edge
            sub._in[dst][src] = edge
        return sub


class LegacyTxGraph(DictTxGraph):
    """The seed implementation: every traversal is a full O(E) edge-dict scan."""

    def out_edges(self, node: Hashable):
        for (src, _dst), edge in self._edges.items():
            if src == node:
                yield edge

    def in_edges(self, node: Hashable):
        for (_src, dst), edge in self._edges.items():
            if dst == node:
                yield edge

    def neighbors(self, node: Hashable) -> set[Hashable]:
        out_nbrs = {dst for (src, dst) in self._edges if src == node}
        in_nbrs = {src for (src, dst) in self._edges if dst == node}
        return out_nbrs | in_nbrs

    def degree(self, node: Hashable) -> int:
        return sum(1 for (src, dst) in self._edges if src == node or dst == node)

    def subgraph(self, nodes):
        keep = set(nodes)
        sub = LegacyTxGraph()
        for node in self._node_order:
            if node in keep:
                sub.add_node(node, **self._node_attrs[node])
        for (src, dst), edge in self._edges.items():
            if src in keep and dst in keep:
                sub.add_edge(src, dst, edge.amount, edge.count, edge.timestamp)
        return sub


def build_dict_graph(ledger, min_value: float = 0.0) -> DictTxGraph:
    """``build_transaction_graph`` against the dict-backed reference store."""
    graph = DictTxGraph()
    cols = ledger.tx_columns()
    keep = (cols.submitted
            & (cols.sender_id != cols.receiver_id)
            & (cols.value >= min_value))
    graph.add_edges_bulk(
        cols.sender_id[keep], cols.receiver_id[keep],
        amounts=cols.value[keep], timestamps=cols.timestamp[keep],
        node_keys=ledger.store.addresses)
    contracts = ledger.contract_address_set()
    labels = ledger.labels
    for node in graph.nodes:
        graph.set_node_attr(node, "is_contract", node in contracts)
        label = labels.get(node)
        graph.set_node_attr(node, "label", label.value if label else None)
    return graph


def assert_build_parity(columnar: TxGraph, dict_graph: DictTxGraph) -> None:
    """Bit parity: node order, edge order, amounts/counts, timestamp means."""
    assert columnar.nodes == dict_graph.nodes, "build parity violated on nodes"
    col_edges = columnar.edges
    ref_edges = dict_graph.edges
    assert [(e.src, e.dst) for e in col_edges] == \
        [(e.src, e.dst) for e in ref_edges], "build parity violated on edge order"
    assert np.array_equal(columnar.edge_feature_matrix(),
                          dict_graph.edge_feature_matrix()), \
        "build parity violated on amounts/counts"
    ts_col = np.array([e.timestamp for e in col_edges])
    ts_ref = np.array([e.timestamp for e in ref_edges])
    assert np.array_equal(ts_col, ts_ref), \
        "build parity violated on merged timestamp means"


def legacy_ego_subgraph(graph: LegacyTxGraph, center, hops: int = 2, k: int = 2000):
    """Seed Eq. 2 sampling: per-frontier-node top-K by average transaction value."""

    def top_k(node):
        scores = {}
        for edge in list(graph.out_edges(node)) + list(graph.in_edges(node)):
            other = edge.dst if edge.src == node else edge.src
            if other == node:
                continue
            avg_value = edge.amount / max(edge.count, 1)
            total_prev, avg_prev = scores.get(other, (0.0, 0.0))
            scores[other] = (total_prev + edge.amount, max(avg_prev, avg_value))
        ranked = sorted(scores.items(), key=lambda item: (-item[1][1], -item[1][0], str(item[0])))
        return [node_id for node_id, _score in ranked[:k]]

    selected = {center}
    frontier = {center}
    for _hop in range(hops):
        next_frontier = set()
        for node in frontier:
            for neighbor in top_k(node):
                if neighbor not in selected:
                    next_frontier.add(neighbor)
        selected |= next_frontier
        frontier = next_frontier
        if not frontier:
            break
    return graph.subgraph(selected)


def legacy_extract_many(extractor: DeepFeatureExtractor, addresses: list[str]) -> np.ndarray:
    """Seed extract_many: a per-address loop over extract()."""
    if not addresses:
        return np.zeros((0, 15))
    return np.vstack([extractor.extract(address) for address in addresses])


def legacy_eigenvector(graph, max_iter: int = 100, tol: float = 1e-8) -> dict:
    """Seed eigenvector centrality: dense (n, n) power iteration."""
    nodes = graph.nodes
    n = len(nodes)
    if n == 0:
        return {}
    adj = graph.adjacency_matrix(symmetric=True) + np.eye(n)
    x = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        x_next = adj @ x + 1e-12
        x_next = x_next / np.linalg.norm(x_next)
        if np.linalg.norm(x_next - x) < tol:
            x = x_next
            break
        x = x_next
    return dict(zip(nodes, np.abs(x)))


def legacy_pagerank(graph, damping: float = 0.85, max_iter: int = 100,
                    tol: float = 1e-10) -> dict:
    """Seed PageRank: dense adjacency with a per-row Python loop."""
    nodes = graph.nodes
    n = len(nodes)
    if n == 0:
        return {}
    adj = graph.adjacency_matrix()
    out_degree = adj.sum(axis=1)
    rank = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        new_rank = np.full(n, (1.0 - damping) / n)
        for i in range(n):
            if out_degree[i] > 0:
                new_rank += damping * rank[i] * adj[i] / out_degree[i]
            else:
                new_rank += damping * rank[i] / n
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return dict(zip(nodes, rank))


def _timed(fn, reps: int = 1) -> tuple[float, object]:
    """(best-of-reps wall seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _sample_centers(graph: TxGraph, rng: np.random.Generator, count: int) -> list:
    """Deterministic mix of labelled-ish (higher degree) and random nodes."""
    nodes = graph.nodes
    by_degree = sorted(nodes, key=lambda n: (-graph.degree(n), str(n)))
    picks = list(by_degree[: count // 2])
    picked = set(picks)
    rest = [n for n in nodes if n not in picked]
    idx = rng.permutation(len(rest))[: count - len(picks)]
    picks.extend(rest[i] for i in idx)
    return picks


def bench_scale(target_txs: int, hops: int = 2, top_k: int = 2000,
                num_centers: int = 20, extract_reps: int = 5,
                seed: int = 7, build_only: bool = False) -> dict:
    """Benchmark one transaction-count scale; returns the result record."""
    config = LedgerConfig().scaled(target_txs / _TXS_PER_UNIT_SCALE)
    config.seed = seed
    ledger = generate_ledger(config)

    build_reps = 2 if target_txs <= 150_000 else 1
    build_time, graph = _timed(lambda: build_transaction_graph(ledger),
                               reps=build_reps)
    build_dict_time, dict_graph = _timed(lambda: build_dict_graph(ledger),
                                         reps=build_reps)
    # Bit parity between the columnar and dict-backed stores, before any
    # timing is recorded in the results.
    assert_build_parity(graph, dict_graph)

    record = {
        "target_transactions": target_txs,
        "num_transactions": ledger.num_transactions,
        "num_accounts": ledger.num_accounts,
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "build_seconds": {"dict": build_dict_time, "columnar": build_time,
                          "speedup": build_dict_time / build_time},
    }
    csr_time, _ = _timed(lambda: graph.to_csr(weighted=True, symmetric=True))
    record["to_csr_seconds"] = csr_time
    if build_only:
        record["build_only"] = True
        return record

    legacy_graph = LegacyTxGraph()
    for edge in graph.edges:
        legacy_graph.add_edge(edge.src, edge.dst, edge.amount, edge.count,
                              edge.timestamp)

    rng = np.random.default_rng(seed)
    centers = _sample_centers(graph, rng, num_centers)

    def run_indexed_sampling():
        return [ego_subgraph(graph, c, hops=hops, k=top_k) for c in centers]

    def run_legacy_sampling():
        return [legacy_ego_subgraph(legacy_graph, c, hops=hops, k=top_k) for c in centers]

    sample_reps = 3 if target_txs <= 20_000 else 1
    sample_new, subs_new = _timed(run_indexed_sampling, reps=sample_reps)
    sample_old, subs_old = _timed(run_legacy_sampling, reps=sample_reps)
    for sub_new, sub_old in zip(subs_new, subs_old):
        assert sub_new.nodes == sub_old.nodes, "sampling parity violated"
        assert sub_new.num_edges == sub_old.num_edges, "sampling parity violated"

    addresses = graph.nodes
    extractor = DeepFeatureExtractor(ledger)
    extract_old, feats_old = _timed(lambda: legacy_extract_many(extractor, addresses))
    cold_extractor = DeepFeatureExtractor(ledger)
    extract_cold, feats_cold = _timed(lambda: cold_extractor.extract_many(addresses))
    # Amortized: the single-pass table is built once and reused, the realistic
    # pattern for the dataset builder (one extract_many call per subgraph).
    amortized_extractor = DeepFeatureExtractor(ledger)
    t0 = time.perf_counter()
    for _ in range(extract_reps):
        feats_new = amortized_extractor.extract_many(addresses)
    extract_new = (time.perf_counter() - t0) / extract_reps
    assert np.array_equal(feats_cold, feats_new), "extract_many must be deterministic"
    assert np.array_equal(feats_old, feats_new), "extract_many parity violated"

    # Centrality on a mid-size sampled subgraph (the augmentation workload);
    # capped so the legacy dense per-row PageRank loop stays tractable.
    cent_sub = max(subs_new, key=lambda s: s.num_nodes)
    if cent_sub.num_nodes > 500:
        cent_sub = cent_sub.subgraph(cent_sub.nodes[:500])
    cent_new, _ = _timed(lambda: (eigenvector_centrality(cent_sub),
                                  pagerank_centrality(cent_sub)), reps=2)
    cent_old, _ = _timed(lambda: (legacy_eigenvector(cent_sub),
                                  legacy_pagerank(cent_sub)), reps=2)

    record.update({
        "num_sample_centers": len(centers),
        "sample_seconds": {"legacy": sample_old, "indexed": sample_new,
                           "speedup": sample_old / sample_new},
        "extract_seconds": {"legacy_per_call": extract_old,
                            "indexed_cold": extract_cold,
                            "indexed_amortized": extract_new,
                            "cold_speedup": extract_old / extract_cold,
                            "speedup": extract_old / extract_new},
        "centrality_seconds": {"legacy": cent_old, "indexed": cent_new,
                               "speedup": cent_old / cent_new,
                               "subgraph_nodes": cent_sub.num_nodes},
    })
    return record


def run(scales=DEFAULT_SCALES, output: Path | None = DEFAULT_OUTPUT,
        build_only_above: int = DEFAULT_BUILD_ONLY_ABOVE, **kwargs) -> dict:
    results = {"config": {"hops": 2, "top_k": 2000, "seed": 7,
                          "scales": list(scales),
                          "build_only_above": build_only_above},
               "scales": []}
    for target in scales:
        scale_kwargs = dict(kwargs)
        if target > 20_000:
            # The legacy O(V*E) sampler would take minutes with the full
            # centre count at 100k transactions; same workload both sides.
            scale_kwargs["num_centers"] = min(scale_kwargs.get("num_centers", 20), 5)
        build_only = target > build_only_above
        record = bench_scale(target, build_only=build_only, **scale_kwargs)
        results["scales"].append(record)
        line = (f"[{record['num_transactions']:>7} txs] "
                f"build {record['build_seconds']['dict']*1e3:8.1f} -> "
                f"{record['build_seconds']['columnar']*1e3:7.1f} ms "
                f"({record['build_seconds']['speedup']:5.1f}x)")
        if not build_only:
            line += (f" | sample {record['sample_seconds']['legacy']*1e3:8.1f} -> "
                     f"{record['sample_seconds']['indexed']*1e3:7.1f} ms "
                     f"({record['sample_seconds']['speedup']:6.1f}x) | "
                     f"extract {record['extract_seconds']['speedup']:5.1f}x | "
                     f"centrality {record['centrality_seconds']['speedup']:5.1f}x")
        else:
            line += " | build-only scale"
        print(line)
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", type=int, nargs="+", default=list(DEFAULT_SCALES),
                        help="target transaction counts (default: 1000 10000 100000 1000000)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="path of the JSON results file")
    parser.add_argument("--centers", type=int, default=20,
                        help="ego-subgraph sampling centres per scale")
    parser.add_argument("--build-only-above", type=int, default=DEFAULT_BUILD_ONLY_ABOVE,
                        help="scales above this tx count compare graph builds only")
    parser.add_argument("--min-build-speedup", type=float, default=None,
                        help="fail unless every scale hits this columnar-vs-dict "
                             "build speedup")
    parser.add_argument("--min-sample-speedup", type=float, default=None,
                        help="fail unless every full scale hits this sampling speedup")
    parser.add_argument("--min-extract-speedup", type=float, default=None,
                        help="fail unless every full scale hits this extract speedup")
    args = parser.parse_args()
    results = run(scales=tuple(args.scales), output=args.output,
                  build_only_above=args.build_only_above,
                  num_centers=args.centers)
    for record in results["scales"]:
        if args.min_build_speedup is not None:
            got = record["build_seconds"]["speedup"]
            assert got >= args.min_build_speedup, (
                f"build speedup {got:.1f}x below {args.min_build_speedup}x "
                f"at {record['num_transactions']} txs")
        if record.get("build_only"):
            continue
        if args.min_sample_speedup is not None:
            got = record["sample_seconds"]["speedup"]
            assert got >= args.min_sample_speedup, (
                f"sampling speedup {got:.1f}x below {args.min_sample_speedup}x "
                f"at {record['num_transactions']} txs")
        if args.min_extract_speedup is not None:
            got = record["extract_seconds"]["speedup"]
            assert got >= args.min_extract_speedup, (
                f"extract speedup {got:.1f}x below {args.min_extract_speedup}x "
                f"at {record['num_transactions']} txs")


if __name__ == "__main__":
    main()
