"""Perf harness: flat histogram-GBDT engine vs the recursive exact reference.

For every tree-based classification head, at calibration-set scale:

* **parity first** — the stacked flat-array predictions are asserted to match
  a per-row recursive descent of the same fitted trees to ≤1e-9 (they are in
  fact bitwise identical), and the histogram head's held-out accuracy is
  asserted to be within noise of the exact-splitter head's, before any timing
  is recorded;
* **fit** — histogram growth (quantile pre-binning + one vectorised bincount
  pass per node) vs the recursive exact splitter;
* **predict** — batched :class:`~repro.ensemble.engine.FlatTreeStack` descent
  vs the per-row recursive walk.

Results are written to ``BENCH_ensemble.json``, and an accuracy-vs-throughput
comparison row per head is merged into ``BENCH_api.json`` under
``"ensemble_heads"``.

Run::

    PYTHONPATH=src python benchmarks/perf_ensemble.py                # full record
    PYTHONPATH=src python benchmarks/perf_ensemble.py --n-samples 800 \
        --reps 1 --min-fit-speedup 2 --min-predict-speedup 5         # CI smoke
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.ensemble import (
    AdaBoostClassifier,
    GradientBoostingClassifier,
    LightGBMClassifier,
    RandomForestClassifier,
    XGBoostClassifier,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_ensemble.json"
API_BENCH = REPO_ROOT / "BENCH_api.json"
PARITY_ATOL = 1e-9
ACCURACY_TOLERANCE = 0.03

HEADS = {
    "gbm": GradientBoostingClassifier,
    "lightgbm": LightGBMClassifier,
    "xgboost": XGBoostClassifier,
    "adaboost": AdaBoostClassifier,
    "random_forest": RandomForestClassifier,
}


def _timed(fn, reps: int) -> tuple[float, object]:
    """(best-of-reps wall seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def calibration_task(n: int, seed: int):
    """Synthetic calibrated ``[P_g, P_l]`` pairs at serving scale."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    gsg = np.clip(0.5 + 0.35 * (labels * 2 - 1) + rng.normal(scale=0.22, size=n), 0.0, 1.0)
    ldg = np.clip(0.5 + 0.28 * (labels * 2 - 1) + rng.normal(scale=0.3, size=n), 0.0, 1.0)
    X = np.column_stack([gsg, ldg])
    split = int(0.75 * n)
    return (X[:split], labels[:split]), (X[split:], labels[split:])


# ------------------------------------------------------------- recursive reference
def _walk_tree(tree, row: np.ndarray):
    """Per-row recursive descent of a flat tree (the reference predictor)."""
    idx = 0
    while tree.feature[idx] >= 0:
        if row[tree.feature[idx]] <= tree.threshold[idx]:
            idx = int(tree.left[idx])
        else:
            idx = int(tree.right[idx])
    return tree.values[idx]


def recursive_reference_proba(model, X: np.ndarray) -> np.ndarray:
    """Positive-class probability via per-row recursive walks of every tree."""
    X = np.atleast_2d(np.asarray(X, dtype=float))
    if isinstance(model, AdaBoostClassifier):
        score = np.zeros(len(X))
        for stump, alpha in zip(model._stumps, model._alphas):
            votes = np.array([
                stump.classes_[int(np.argmax(_walk_tree(stump.flat, row)))]
                for row in X])
            score += alpha * (2 * votes.astype(int) - 1)
        total = sum(abs(a) for a in model._alphas) or 1.0
        return (score / total + 1.0) / 2.0
    if isinstance(model, RandomForestClassifier):
        votes = np.zeros((len(X), len(model.classes_)))
        for tree in model._trees:
            columns = np.searchsorted(model.classes_, tree.classes_)
            for i, row in enumerate(X):
                votes[i, columns] += _walk_tree(tree.flat, row)
        return (votes / len(model._trees))[:, 1]
    # Boosted heads: accumulate per-tree leaf values in fit order.
    X_in = model._transform_inputs(X)
    raw = np.full(len(X), model._base_score)
    for tree in model._trees:
        raw += model.learning_rate * np.array([_walk_tree(tree, row) for row in X_in])
    return 1.0 / (1.0 + np.exp(-np.clip(raw, -30.0, 30.0)))


def batched_proba(model, X: np.ndarray) -> np.ndarray:
    probs = model.predict_proba(X)
    return probs[:, 1] if probs.ndim == 2 else probs


# --------------------------------------------------------------------- benchmark
def bench_head(name: str, X_fit, y_fit, X_eval, y_eval, reps: int,
               seed: int) -> dict:
    cls = HEADS[name]
    hist = cls(seed=seed, tree_method="hist").fit(X_fit, y_fit)
    exact = cls(seed=seed, tree_method="exact").fit(X_fit, y_fit)

    # --- parity before timing ----------------------------------------------
    flat = batched_proba(hist, X_eval)
    reference = recursive_reference_proba(hist, X_eval)
    predict_diff = float(np.abs(flat - reference).max())
    assert predict_diff <= PARITY_ATOL, \
        f"{name}: batched/recursive parity violated ({predict_diff:.3e})"

    hist_accuracy = float((hist.predict(X_eval) == y_eval).mean())
    exact_accuracy = float((exact.predict(X_eval) == y_eval).mean())
    accuracy_gap = abs(hist_accuracy - exact_accuracy)
    assert accuracy_gap <= ACCURACY_TOLERANCE, \
        f"{name}: accuracy drifted {accuracy_gap:.3f} from exact reference"

    # --- timing -------------------------------------------------------------
    t_fit_hist, _ = _timed(
        lambda: cls(seed=seed, tree_method="hist").fit(X_fit, y_fit), reps)
    t_fit_exact, _ = _timed(
        lambda: cls(seed=seed, tree_method="exact").fit(X_fit, y_fit), reps)
    t_predict_flat, _ = _timed(lambda: batched_proba(hist, X_eval), reps)
    t_predict_recursive, _ = _timed(
        lambda: recursive_reference_proba(hist, X_eval), max(1, reps // 2))

    return {
        "predict_parity_max_diff": predict_diff,
        "hist_accuracy": hist_accuracy,
        "exact_accuracy": exact_accuracy,
        "n_trees": len(getattr(hist, "_trees", getattr(hist, "_stumps", []))),
        "fit": {
            "hist_seconds": t_fit_hist,
            "exact_seconds": t_fit_exact,
            "speedup": t_fit_exact / t_fit_hist,
        },
        "predict": {
            "batched_seconds": t_predict_flat,
            "recursive_seconds": t_predict_recursive,
            "speedup": t_predict_recursive / t_predict_flat,
            "batched_rows_per_second": len(X_eval) / t_predict_flat,
        },
    }


def merge_api_row(results: dict, api_path: Path) -> None:
    """Read-modify-write the head-comparison row into ``BENCH_api.json``."""
    if not api_path.exists():
        return
    api = json.loads(api_path.read_text())
    api["ensemble_heads"] = {
        name: {
            "accuracy": record["hist_accuracy"],
            "fit_seconds": record["fit"]["hist_seconds"],
            "predict_rows_per_second": record["predict"]["batched_rows_per_second"],
            "fit_speedup_vs_exact": record["fit"]["speedup"],
            "predict_speedup_vs_recursive": record["predict"]["speedup"],
        }
        for name, record in results["heads"].items()
    }
    api_path.write_text(json.dumps(api, indent=2) + "\n")
    print(f"merged ensemble_heads row into {api_path}")


def run(n_samples: int = 4000, reps: int = 3, seed: int = 11,
        output: Path | None = DEFAULT_OUTPUT, api_path: Path | None = API_BENCH,
        ) -> dict:
    (X_fit, y_fit), (X_eval, y_eval) = calibration_task(n_samples, seed)
    print(f"task: {len(X_fit)} fit rows, {len(X_eval)} eval rows")
    results = {
        "config": {"n_samples": n_samples, "reps": reps, "seed": seed,
                   "parity_atol": PARITY_ATOL,
                   "accuracy_tolerance": ACCURACY_TOLERANCE},
        "heads": {},
    }
    for name in sorted(HEADS):
        record = bench_head(name, X_fit, y_fit, X_eval, y_eval, reps, seed)
        results["heads"][name] = record
        print(f"[{name:13s}] fit {record['fit']['speedup']:6.1f}x | "
              f"predict {record['predict']['speedup']:7.1f}x "
              f"({record['predict']['batched_rows_per_second']:9.0f} rows/s) | "
              f"acc hist {record['hist_accuracy']:.3f} "
              f"exact {record['exact_accuracy']:.3f} | "
              f"parity {record['predict_parity_max_diff']:.1e}")

    heads = results["heads"].values()
    results["combined_fit_speedup"] = (
        sum(r["fit"]["exact_seconds"] for r in heads)
        / sum(r["fit"]["hist_seconds"] for r in heads))
    results["combined_predict_speedup"] = (
        sum(r["predict"]["recursive_seconds"] for r in heads)
        / sum(r["predict"]["batched_seconds"] for r in heads))
    print(f"[combined] fit {results['combined_fit_speedup']:.1f}x, "
          f"predict {results['combined_predict_speedup']:.1f}x")

    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    if api_path is not None:
        merge_api_row(results, api_path)
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-samples", type=int, default=4000,
                        help="calibration rows (default: 4000)")
    parser.add_argument("--reps", type=int, default=3,
                        help="best-of repetitions per measurement")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="path of the JSON results file")
    parser.add_argument("--skip-api-row", action="store_true",
                        help="do not merge the comparison row into BENCH_api.json")
    parser.add_argument("--min-fit-speedup", type=float, default=None,
                        help="fail unless the combined fit speedup hits this floor")
    parser.add_argument("--min-predict-speedup", type=float, default=None,
                        help="fail unless the combined predict speedup hits this floor")
    args = parser.parse_args()
    results = run(n_samples=args.n_samples, reps=args.reps, seed=args.seed,
                  output=args.output,
                  api_path=None if args.skip_api_row else API_BENCH)
    if args.min_fit_speedup is not None:
        got = results["combined_fit_speedup"]
        assert got >= args.min_fit_speedup, (
            f"combined fit speedup {got:.2f}x below {args.min_fit_speedup}x floor")
    if args.min_predict_speedup is not None:
        got = results["combined_predict_speedup"]
        assert got >= args.min_predict_speedup, (
            f"combined predict speedup {got:.2f}x below "
            f"{args.min_predict_speedup}x floor")


if __name__ == "__main__":
    main()
